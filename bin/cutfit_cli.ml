(* cutfit — command-line front end for the Cut-to-Fit library.

   Subcommands: datasets, generate, characterize, partition, advise,
   run, compare. The heavy experiment reproduction lives in
   bench/main.exe; this tool is for interactive use on single graphs. *)

open Cmdliner

let load_graph name_or_path =
  if Sys.file_exists name_or_path then Cutfit.Graph_io.load name_or_path
  else begin
    match Cutfit.Datasets.find name_or_path with
    | spec -> Cutfit.Datasets.generate spec
    | exception Not_found ->
        Fmt.failwith "unknown dataset %S (expected a file or one of: %s)" name_or_path
          (String.concat ", " Cutfit.Datasets.names)
  end

let graph_arg =
  let doc = "Dataset name (see $(b,cutfit datasets)) or path to an edge-list file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let partitions_arg =
  let doc = "Number of edge partitions." in
  Arg.(value & opt int 128 & info [ "n"; "partitions" ] ~docv:"N" ~doc)

let partitioner_arg =
  let parse s =
    match Cutfit.Partitioner.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown partitioner %S" s))
  in
  let print ppf p = Fmt.string ppf (Cutfit.Partitioner.name p) in
  Arg.conv (parse, print)

let algo_arg =
  let parse s =
    match Cutfit.Advisor.algorithm_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S (PR, CC, TR, SSSP)" s))
  in
  let print ppf a = Fmt.string ppf (Cutfit.Advisor.algorithm_name a) in
  Arg.(required & pos 0 (some (conv (parse, print))) None & info [] ~docv:"ALGO" ~doc:"PR, CC, TR or SSSP.")

let config_arg =
  let parse s =
    match Cutfit.Cluster.find s with
    | c -> Ok c
    | exception Not_found -> Error (`Msg (Printf.sprintf "unknown configuration %S (i..iv)" s))
  in
  let print ppf c = Fmt.string ppf c.Cutfit.Cluster.name in
  Arg.(value & opt (conv (parse, print)) Cutfit.Cluster.config_i & info [ "c"; "config" ] ~docv:"CFG" ~doc:"Cluster configuration: i, ii, iii or iv.")

(* --- telemetry plumbing shared by run/compare --- *)

let trace_out_arg =
  let doc =
    "Write one JSON object per superstep (plus run boundaries) to $(docv). The records carry \
     the full per-superstep signal set: messages, local/remote shuffles, bytes on the wire, \
     per-executor busy and barrier-wait times, and task-skew extrema."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE.jsonl" ~doc)

let verbose_supersteps_arg =
  let doc = "Print every superstep's telemetry record as the run executes." in
  Arg.(value & flag & info [ "verbose-supersteps" ] ~doc)

let paranoid_arg =
  let doc =
    "Run the simulator sanitizer alongside the computation: validate the partition assignment \
     before the distributed graph is built, then cross-check the frozen structure and its \
     metrics (including the replication identity of the paper's \u{00a7}3.1). Any violation \
     aborts with a structured report."
  in
  Arg.(value & flag & info [ "paranoid" ] ~doc)

(* Build a telemetry handle from the CLI flags, or [None] when neither
   flag asks for one (keeping the engines' zero-allocation path). The
   returned closer finishes the sinks and reports where the trace went. *)
let telemetry_of_flags ~trace_out ~verbose =
  match (trace_out, verbose) with
  | None, false -> (None, fun () -> ())
  | _ ->
      let sinks =
        (match trace_out with
        | Some path -> (
            match Cutfit.Sink.jsonl path with
            | sink -> [ sink ]
            | exception Sys_error msg ->
                Fmt.epr "cutfit: cannot open trace file: %s@." msg;
                exit 1)
        | None -> [])
        @ if verbose then [ Cutfit.Sink.console ~verbose:true Format.std_formatter ] else []
      in
      let t = Cutfit.Telemetry.create ~sinks () in
      ( Some t,
        fun () ->
          Cutfit.Telemetry.close t;
          match trace_out with
          | Some path -> Fmt.pr "wrote %d telemetry events to %s@." (Cutfit.Telemetry.events_emitted t) path
          | None -> () )

(* Surface sanitizer violations as a readable report + exit 1 instead of
   an uncaught-exception backtrace. *)
let with_violation_report f =
  match f () with
  | v -> v
  | exception Cutfit.Check.Violation.Violations vs ->
      Fmt.epr "cutfit: sanitizer violations:@.%a@." Cutfit.Check.Violation.pp_list vs;
      exit 1

(* --- datasets --- *)

let datasets_cmd =
  let action () =
    List.iter
      (fun spec ->
        Fmt.pr "%-16s %-16s original: %s vertices, %s edges@." spec.Cutfit.Datasets.name
          spec.Cutfit.Datasets.display
          (Cutfit_experiments.Report.commas spec.Cutfit.Datasets.paper_vertices)
          (Cutfit_experiments.Report.commas spec.Cutfit.Datasets.paper_edges))
      Cutfit.Datasets.all
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the built-in dataset analogues.")
    Term.(const action $ const ())

(* --- generate --- *)

let generate_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output edge-list path.")
  in
  let action graph output =
    let g = load_graph graph in
    Cutfit.Graph_io.save output g;
    Fmt.pr "wrote %s edges to %s@."
      (Cutfit_experiments.Report.commas (Cutfit.Graph.num_edges g))
      output
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a dataset analogue and save it as an edge list.")
    Term.(const action $ graph_arg $ output)

(* --- characterize --- *)

let characterize_cmd =
  let action graph =
    let g = load_graph graph in
    let c = Cutfit.Characterize.compute g in
    Fmt.pr "%a@." Cutfit.Characterize.pp c
  in
  Cmd.v (Cmd.info "characterize" ~doc:"Measure the Table-1 characterization of a graph.")
    Term.(const action $ graph_arg)

(* --- partition --- *)

let partition_cmd =
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: all six).")
  in
  let action graph num_partitions strategy =
    let g = load_graph graph in
    let ps = match strategy with Some p -> [ p ] | None -> Cutfit.Partitioner.paper_six in
    List.iter
      (fun p ->
        let a = Cutfit.Partitioner.assign p ~num_partitions g in
        let m = Cutfit.Metrics.compute g ~num_partitions a in
        Fmt.pr "%-6s %a@." (Cutfit.Partitioner.name p) Cutfit.Metrics.pp m)
      ps
  in
  Cmd.v (Cmd.info "partition" ~doc:"Partition a graph and print the five paper metrics.")
    Term.(const action $ graph_arg $ partitions_arg $ strategy)

(* --- advise --- *)

let advise_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let action algo graph num_partitions =
    let g = load_graph graph in
    let strategy = Cutfit.Advisor.advise algo ~scale:1.0 ~num_partitions g in
    Fmt.pr "advised partitioner for %s at %d partitions: %s (optimizes %s)@."
      (Cutfit.Advisor.algorithm_name algo)
      num_partitions
      (Cutfit.Strategy.to_string strategy)
      (Cutfit.Advisor.predictive_metric algo);
    List.iter
      (fun r ->
        Fmt.pr "  %-6s %s = %s@."
          (Cutfit.Strategy.to_string r.Cutfit.Advisor.strategy)
          (Cutfit.Advisor.predictive_metric algo)
          (Cutfit_experiments.Report.fsig r.Cutfit.Advisor.score))
      (Cutfit.Advisor.measure algo ~num_partitions g)
  in
  Cmd.v (Cmd.info "advise" ~doc:"Recommend a partitioner for an algorithm on a graph.")
    Term.(const action $ algo_arg $ graph_pos1 $ partitions_arg)

(* --- run --- *)

let run_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: advised).")
  in
  let action algo graph config partitioner trace_out verbose paranoid =
    let g = load_graph graph in
    let telemetry, finish_telemetry = telemetry_of_flags ~trace_out ~verbose in
    let p =
      with_violation_report (fun () ->
          Cutfit.Pipeline.prepare ~check:paranoid ~cluster:config ?partitioner ?telemetry
            ~algorithm:algo g)
    in
    Fmt.pr "partitioner: %s, %s@."
      (Cutfit.Partitioner.name p.Cutfit.Pipeline.partitioner)
      (Cutfit.Cluster.describe config);
    let trace =
      match algo with
      | Cutfit.Advisor.Pagerank ->
          let ranks, trace = Cutfit.Pipeline.pagerank p in
          let top = ref 0 in
          Array.iteri (fun v r -> if r > ranks.(!top) then top := v) ranks;
          Fmt.pr "top vertex: %d (rank %.3f)@." !top ranks.(!top);
          trace
      | Cutfit.Advisor.Connected_components ->
          let labels, trace = Cutfit.Pipeline.connected_components p in
          let distinct = List.length (List.sort_uniq compare (Array.to_list labels)) in
          Fmt.pr "components (labels after 10 iterations): %d@." distinct;
          trace
      | Cutfit.Advisor.Triangle_count ->
          let _, total, trace = Cutfit.Pipeline.triangles p in
          Fmt.pr "triangles: %s@." (Cutfit_experiments.Report.commas total);
          trace
      | Cutfit.Advisor.Shortest_paths ->
          let landmarks = Cutfit.Sssp.pick_landmarks ~seed:5L ~count:5 g in
          let d, trace = Cutfit.Pipeline.shortest_paths ~landmarks p in
          let reached = ref 0 in
          Array.iter (fun row -> if row.(0) < max_int then incr reached) d;
          Fmt.pr "vertices reaching landmark 0: %d@." !reached;
          trace
    in
    Fmt.pr "%a@." Cutfit.Trace.pp_summary trace;
    finish_telemetry ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an algorithm on a partitioned graph and print the simulated trace.")
    Term.(const action $ algo_arg $ graph_pos1 $ config_arg $ strategy $ trace_out_arg $ verbose_supersteps_arg $ paranoid_arg)

(* --- compare --- *)

let compare_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let action algo graph config trace_out verbose paranoid =
    let g = load_graph graph in
    let telemetry, finish_telemetry = telemetry_of_flags ~trace_out ~verbose in
    List.iter
      (fun (name, t) -> Fmt.pr "%-10s %s@." name (Cutfit_experiments.Report.seconds t))
      (with_violation_report (fun () ->
           Cutfit.Pipeline.compare_partitioners ~check:paranoid ~cluster:config ?telemetry
             ~algorithm:algo g));
    finish_telemetry ()
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare simulated job time across the six partitioners.")
    Term.(const action $ algo_arg $ graph_pos1 $ config_arg $ trace_out_arg $ verbose_supersteps_arg $ paranoid_arg)

(* --- check --- *)

let check_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: advised).")
  in
  let action algo graph config partitioner =
    let g = load_graph graph in
    let report = Cutfit.Sanitize.check_run ~cluster:config ?partitioner ~algorithm:algo g in
    Fmt.pr "%a@." Cutfit.Sanitize.pp_report report;
    if not (Cutfit.Sanitize.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the full simulator sanitizer on one algorithm/graph pair: partition structure, \
          metrics recomputation, trace conservation laws, telemetry reconciliation, and the \
          run-twice determinism digest. Exits non-zero on any violation.")
    Term.(const action $ algo_arg $ graph_pos1 $ config_arg $ strategy)

let () =
  let doc = "Tailor graph partitioning to the computation (Cut to Fit)." in
  let info = Cmd.info "cutfit" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ datasets_cmd; generate_cmd; characterize_cmd; partition_cmd; advise_cmd; run_cmd;
            compare_cmd; check_cmd ]))
