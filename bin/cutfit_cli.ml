(* cutfit — command-line front end for the Cut-to-Fit library.

   Subcommands: datasets, generate, characterize, partition, advise,
   run, compare. The heavy experiment reproduction lives in
   bench/main.exe; this tool is for interactive use on single graphs. *)

open Cmdliner

(* Exit-code contract (tested by tools/verify.sh): 0 success, 1 a
   violation or job/run failure, 2 a usage error (bad flag value,
   unknown dataset, malformed fault spec). *)
let exit_ok = 0
let exit_failure = 1
let exit_usage = 2

(* A usage error detected after argument parsing: report and exit 2,
   matching cmdliner's own parse errors. *)
let usage_fail fmt =
  Fmt.kstr
    (fun m ->
      Fmt.epr "cutfit: %s@." m;
      exit exit_usage)
    fmt

let load_graph name_or_path =
  if Sys.file_exists name_or_path then Cutfit.Graph_io.load name_or_path
  else begin
    match Cutfit.Datasets.find name_or_path with
    | spec -> Cutfit.Datasets.generate spec
    | exception Not_found ->
        usage_fail "unknown dataset %S (expected a file or one of: %s)" name_or_path
          (String.concat ", " Cutfit.Datasets.names)
  end

let graph_arg =
  let doc = "Dataset name (see $(b,cutfit datasets)) or path to an edge-list file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let partitions_arg =
  let doc = "Number of edge partitions." in
  Arg.(value & opt int 128 & info [ "n"; "partitions" ] ~docv:"N" ~doc)

let partitioner_arg =
  let parse s =
    match Cutfit.Partitioner.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown partitioner %S" s))
  in
  let print ppf p = Fmt.string ppf (Cutfit.Partitioner.name p) in
  Arg.conv (parse, print)

let algo_arg =
  let parse s =
    match Cutfit.Advisor.algorithm_of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S (PR, CC, TR, SSSP)" s))
  in
  let print ppf a = Fmt.string ppf (Cutfit.Advisor.algorithm_name a) in
  Arg.(required & pos 0 (some (conv (parse, print))) None & info [] ~docv:"ALGO" ~doc:"PR, CC, TR or SSSP.")

let config_arg =
  let parse s =
    match Cutfit.Cluster.find s with
    | c -> Ok c
    | exception Not_found -> Error (`Msg (Printf.sprintf "unknown configuration %S (i..iv)" s))
  in
  let print ppf c = Fmt.string ppf c.Cutfit.Cluster.name in
  Arg.(value & opt (conv (parse, print)) Cutfit.Cluster.config_i & info [ "c"; "config" ] ~docv:"CFG" ~doc:"Cluster configuration: i, ii, iii or iv.")

let seed_arg ~default ~doc =
  Arg.(value & opt int64 default & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- execution-engine flags shared by run/check --- *)

type engine = Boxed | Csr_engine

let engine_arg =
  let parse = function
    | "boxed" -> Ok Boxed
    | "csr" -> Ok Csr_engine
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (boxed, csr)" s))
  in
  let print ppf e = Fmt.string ppf (match e with Boxed -> "boxed" | Csr_engine -> "csr") in
  let doc =
    "Execution engine: $(b,boxed) (the simulated GraphX/Spark runtime with its cost model and \
     trace) or $(b,csr) (the compact flat-array kernels executed for real on OCaml domains; \
     reports measured wall time instead of a simulated trace). Values are bit-identical \
     between the two."
  in
  Arg.(value & opt (conv (parse, print)) Boxed & info [ "engine" ] ~docv:"ENGINE" ~doc)

let domains_arg =
  let doc =
    "Worker domains for $(b,--engine csr) (ignored by the boxed engine). Results are \
     bit-identical at any value; see docs/PERFORMANCE.md."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

(* --- telemetry plumbing shared by run/compare --- *)

let trace_out_arg =
  let doc =
    "Write one JSON object per superstep (plus run boundaries) to $(docv). The records carry \
     the full per-superstep signal set: messages, local/remote shuffles, bytes on the wire, \
     per-executor busy and barrier-wait times, and task-skew extrema."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE.jsonl" ~doc)

let verbose_supersteps_arg =
  let doc = "Print every superstep's telemetry record as the run executes." in
  Arg.(value & flag & info [ "verbose-supersteps" ] ~doc)

let paranoid_arg =
  let doc =
    "Run the simulator sanitizer alongside the computation: validate the partition assignment \
     before the distributed graph is built, then cross-check the frozen structure and its \
     metrics (including the replication identity of the paper's \u{00a7}3.1). Any violation \
     aborts with a structured report."
  in
  Arg.(value & flag & info [ "paranoid" ] ~doc)

(* Build a telemetry handle from the CLI flags, or [None] when neither
   flag asks for one (keeping the engines' zero-allocation path). The
   returned closer finishes the sinks and reports where the trace went. *)
let telemetry_of_flags ~trace_out ~verbose =
  match (trace_out, verbose) with
  | None, false -> (None, fun () -> ())
  | _ ->
      let sinks =
        (match trace_out with
        | Some path -> (
            match Cutfit.Sink.jsonl path with
            | sink -> [ sink ]
            | exception Sys_error msg ->
                Fmt.epr "cutfit: cannot open trace file: %s@." msg;
                exit 1)
        | None -> [])
        @ if verbose then [ Cutfit.Sink.console ~verbose:true Format.std_formatter ] else []
      in
      let t = Cutfit.Telemetry.create ~sinks () in
      ( Some t,
        fun () ->
          Cutfit.Telemetry.close t;
          match trace_out with
          | Some path -> Fmt.pr "wrote %d telemetry events to %s@." (Cutfit.Telemetry.events_emitted t) path
          | None -> () )

(* Surface sanitizer violations as a readable report + exit 1 instead of
   an uncaught-exception backtrace. *)
let with_violation_report f =
  match f () with
  | v -> v
  | exception Cutfit.Check.Violation.Violations vs ->
      Fmt.epr "cutfit: sanitizer violations:@.%a@." Cutfit.Check.Violation.pp_list vs;
      exit exit_failure

(* --- fault-injection flags shared by run/compare/check/workload --- *)

let faults_spec_arg =
  let doc =
    "Inject a deterministic fault schedule into every Pregel/GAS run. $(docv) is a \
     comma-separated list of: $(b,crash\\@K)[:eE] (executor loss at superstep K), \
     $(b,straggler\\@K-L)[:eE][:xF] (xF slowdown over K..L), $(b,net\\@K-L)[:xF] (bandwidth \
     degraded to xF), $(b,loss\\@K)[:eE][:rN] (transient shuffle loss, N retransmissions), \
     $(b,rand\\@R) (each superstep fires one random fault with probability R). Faults perturb \
     only the simulated time accounting — final vertex values stay bit-identical."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let checkpoint_every_arg =
  let doc =
    "Write a superstep checkpoint every $(docv) compute supersteps (costed via the storage \
     bandwidth of the cost model). Rollback recovery replays from the last checkpoint."
  in
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed of the fault schedule's random draws (executor choices, rand\\@R firings).")

let fault_mode_arg =
  Arg.(
    value & opt string "rollback"
    & info [ "fault-mode" ] ~docv:"MODE"
        ~doc:
          "Recovery mode after an executor loss: $(b,rollback) (restart from the last \
           checkpoint and replay) or $(b,lineage) (rebuild only the lost partitions).")

let max_failures_arg =
  Arg.(
    value & opt int 2
    & info [ "max-failures" ] ~docv:"K"
        ~doc:"Executor losses tolerated per run; one more aborts the run.")

let faults_of_flags ~spec ~fault_seed ~max_failures ~mode =
  match spec with
  | None -> None
  | Some raw -> (
      let mode =
        match Cutfit.Faults.mode_of_name mode with
        | m -> m
        | exception Cutfit.Faults.Parse_error msg -> usage_fail "%s" msg
      in
      match Cutfit.Faults.config ~seed:fault_seed ~max_failures ~mode raw with
      | c -> Some c
      | exception Cutfit.Faults.Parse_error msg -> usage_fail "bad --faults spec: %s" msg)

(* --- speculative re-execution flags shared by run/compare/check/workload --- *)

let speculate_arg =
  let doc =
    "Launch a priced speculative clone of a straggling executor's superstep tasks on the \
     least-loaded executor; the earlier finisher wins. Like faults, speculation perturbs only \
     the simulated time accounting — final vertex values stay bit-identical."
  in
  Arg.(value & flag & info [ "speculate" ] ~doc)

let speculate_threshold_arg =
  Arg.(
    value & opt float 2.0
    & info [ "speculate-threshold" ] ~docv:"X"
        ~doc:
          "Multiple of the median per-executor busy time past which the slowest executor is \
           declared a straggler (>= 1).")

let speculation_of_flags ~speculate ~threshold ~fault_seed =
  if not speculate then None
  else
    match Cutfit.Speculation.config ~threshold ~seed:fault_seed () with
    | c -> Some c
    | exception Invalid_argument msg -> usage_fail "bad --speculate-threshold: %s" msg

(* --- elasticity / heterogeneity flags shared by run/check/workload --- *)

let scale_events_arg =
  let doc =
    "Apply a deterministic scale-event schedule: comma-separated $(b,join\\@T+N) (N executors \
     join before superstep T), $(b,leave\\@T-N) (N executors drain and leave) and \
     $(b,preempt\\@T:rN) (a spot instance is reclaimed and reacquired after N backoff \
     retries). Membership changes trigger priced re-shuffles, itemized in the trace; like \
     faults, scale events perturb only time and locality — final vertex values stay \
     bit-identical to a static cluster. Under $(b,workload) the schedule instead drives the \
     executor slots: leaves drain, joins add capacity, preemptions requeue the running job \
     without consuming its retry budget."
  in
  Arg.(value & opt (some string) None & info [ "scale-events" ] ~docv:"SPEC" ~doc)

let hetero_arg =
  let doc =
    "Give the executors heterogeneous capabilities: $(b,draw) (seeded speed/bandwidth \
     multipliers in [0.6, 1.4], keyed on $(b,--fault-seed)) or an explicit comma-separated \
     list of $(b,SPEED)[/$(b,BANDWIDTH)] multipliers, one per executor (cycled when fewer \
     are given). Busy time divides by speed, egress bandwidth multiplies by bandwidth; \
     values stay bit-identical to the homogeneous model."
  in
  Arg.(value & opt (some string) None & info [ "hetero" ] ~docv:"SPEC" ~doc)

let elastic_of_flags ~spec ~fault_seed =
  match spec with
  | None -> None
  | Some raw -> (
      match Cutfit.Elastic.config ~seed:fault_seed raw with
      | c -> Some c
      | exception Cutfit.Elastic.Parse_error msg -> usage_fail "bad --scale-events spec: %s" msg)

let hetero_of_flags ~spec ~executors ~fault_seed =
  match spec with
  | None -> None
  | Some "draw" -> Some (Cutfit.Elastic.draw_hetero ~seed:fault_seed ~executors)
  | Some raw -> (
      match Cutfit.Elastic.hetero_of_spec ~executors raw with
      | h -> Some h
      | exception Cutfit.Elastic.Parse_error msg -> usage_fail "bad --hetero spec: %s" msg)

(* --- dynamic-graph (mutation) flags shared by workload/check/mutate --- *)

let mutation_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "mutation-seed" ] ~docv:"SEED"
        ~doc:"Seed of the mutation batches' endpoint and victim draws.")

let mutations_of_flags ~spec ~seed =
  match spec with
  | None -> None
  | Some raw -> (
      match Cutfit.Mutation.config ~seed raw with
      | c -> Some c
      | exception Cutfit.Mutation.Parse_error msg -> usage_fail "bad mutation spec: %s" msg)

(* --- datasets --- *)

let datasets_cmd =
  let action () =
    List.iter
      (fun spec ->
        Fmt.pr "%-16s %-16s original: %s vertices, %s edges@." spec.Cutfit.Datasets.name
          spec.Cutfit.Datasets.display
          (Cutfit_experiments.Report.commas spec.Cutfit.Datasets.paper_vertices)
          (Cutfit_experiments.Report.commas spec.Cutfit.Datasets.paper_edges))
      Cutfit.Datasets.all;
    exit_ok
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the built-in dataset analogues.")
    Term.(const action $ const ())

(* --- generate --- *)

let generate_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output edge-list path.")
  in
  let action graph output =
    let g = load_graph graph in
    Cutfit.Graph_io.save output g;
    Fmt.pr "wrote %s edges to %s@."
      (Cutfit_experiments.Report.commas (Cutfit.Graph.num_edges g))
      output;
    exit_ok
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a dataset analogue and save it as an edge list.")
    Term.(const action $ graph_arg $ output)

(* --- characterize --- *)

let characterize_cmd =
  let action graph =
    let g = load_graph graph in
    let c = Cutfit.Characterize.compute g in
    Fmt.pr "%a@." Cutfit.Characterize.pp c;
    exit_ok
  in
  Cmd.v (Cmd.info "characterize" ~doc:"Measure the Table-1 characterization of a graph.")
    Term.(const action $ graph_arg)

(* --- partition --- *)

let partition_cmd =
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: all six).")
  in
  let action graph num_partitions strategy =
    let g = load_graph graph in
    let ps = match strategy with Some p -> [ p ] | None -> Cutfit.Partitioner.paper_six in
    List.iter
      (fun p ->
        let a = Cutfit.Partitioner.assign p ~num_partitions g in
        let m = Cutfit.Metrics.compute g ~num_partitions a in
        Fmt.pr "%-6s %a@." (Cutfit.Partitioner.name p) Cutfit.Metrics.pp m)
      ps;
    exit_ok
  in
  Cmd.v (Cmd.info "partition" ~doc:"Partition a graph and print the five paper metrics.")
    Term.(const action $ graph_arg $ partitions_arg $ strategy)

(* --- advise --- *)

let advise_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let action algo graph num_partitions =
    let g = load_graph graph in
    let strategy = Cutfit.Advisor.advise algo ~scale:1.0 ~num_partitions g in
    Fmt.pr "advised partitioner for %s at %d partitions: %s (optimizes %s)@."
      (Cutfit.Advisor.algorithm_name algo)
      num_partitions
      (Cutfit.Strategy.to_string strategy)
      (Cutfit.Advisor.predictive_metric algo);
    List.iter
      (fun r ->
        Fmt.pr "  %-6s %s = %s@."
          (Cutfit.Strategy.to_string r.Cutfit.Advisor.strategy)
          (Cutfit.Advisor.predictive_metric algo)
          (Cutfit_experiments.Report.fsig r.Cutfit.Advisor.score))
      (Cutfit.Advisor.measure algo ~num_partitions g);
    exit_ok
  in
  Cmd.v (Cmd.info "advise" ~doc:"Recommend a partitioner for an algorithm on a graph.")
    Term.(const action $ algo_arg $ graph_pos1 $ partitions_arg)

(* --- run --- *)

let run_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: advised).")
  in
  let action algo graph config partitioner seed engine domains faults_spec checkpoint_every
      fault_seed fault_mode max_failures speculate speculate_threshold scale_events hetero_spec
      capability trace_out verbose paranoid =
    let g = load_graph graph in
    if domains < 1 then usage_fail "domains must be >= 1 (got %d)" domains;
    let faults =
      faults_of_flags ~spec:faults_spec ~fault_seed ~max_failures ~mode:fault_mode
    in
    let speculation =
      speculation_of_flags ~speculate ~threshold:speculate_threshold ~fault_seed
    in
    let elastic = elastic_of_flags ~spec:scale_events ~fault_seed in
    let executors = config.Cutfit.Cluster.executors in
    let hetero = hetero_of_flags ~spec:hetero_spec ~executors ~fault_seed in
    let partitioner =
      if not capability then partitioner
      else
        match (hetero, partitioner) with
        | None, _ -> usage_fail "--capability requires --hetero (it weights by host speed)"
        | Some _, Some _ -> usage_fail "--capability and --partitioner are mutually exclusive"
        | Some h, None ->
            Some (Cutfit.Partitioner.capability ~speeds:h.Cutfit.Elastic.speeds ~executors)
    in
    let telemetry, finish_telemetry = telemetry_of_flags ~trace_out ~verbose in
    let p =
      with_violation_report (fun () ->
          Cutfit.Pipeline.prepare ~check:paranoid ~cluster:config ?partitioner ?checkpoint_every
            ?faults ?speculation ?elastic ?hetero ?telemetry ~algorithm:algo g)
    in
    Fmt.pr "partitioner: %s, %s@."
      (Cutfit.Partitioner.name p.Cutfit.Pipeline.partitioner)
      (Cutfit.Cluster.describe config);
    (match faults with
    | Some f -> Fmt.pr "faults: %s@." (Cutfit.Faults.describe f)
    | None -> ());
    (match speculation with
    | Some s ->
        Fmt.pr "speculation: on (threshold x%g over the median executor busy time)@."
          s.Cutfit.Speculation.threshold
    | None -> ());
    (match elastic with
    | Some e -> Fmt.pr "scale events: %s@." (Cutfit.Elastic.describe e)
    | None -> ());
    (match hetero with
    | Some h -> Fmt.pr "hetero: %s@." (Cutfit.Elastic.describe_hetero h)
    | None -> ());
    match engine with
    | Csr_engine ->
        (match (faults, speculation, elastic, hetero) with
        | None, None, None, None -> ()
        | _ ->
            Fmt.pr
              "note: --faults/--speculate/--scale-events/--hetero perturb only the simulated \
               engines; the csr engine runs them statically (values are identical either \
               way)@.");
        let c = Cutfit.Csr.build p.Cutfit.Pipeline.pg in
        let edges = Cutfit.Graph.num_edges p.Cutfit.Pipeline.graph in
        let rounds = ref 1 in
        let t0 = Cutfit.Clock.wall () in
        (match algo with
        | Cutfit.Advisor.Pagerank ->
            let ranks = Cutfit.Pagerank.run_csr ~domains ~rounds c in
            let top = ref 0 in
            Array.iteri (fun v r -> if r > ranks.(!top) then top := v) ranks;
            Fmt.pr "top vertex: %d (rank %.3f)@." !top ranks.(!top)
        | Cutfit.Advisor.Connected_components ->
            let labels = Cutfit.Connected_components.run_csr ~domains ~rounds c in
            let distinct = List.length (List.sort_uniq compare (Array.to_list labels)) in
            Fmt.pr "components (labels after 10 iterations): %d@." distinct
        | Cutfit.Advisor.Triangle_count ->
            let _, total = Cutfit.Triangle_count.run_csr ~domains c in
            Fmt.pr "triangles: %s@." (Cutfit_experiments.Report.commas total)
        | Cutfit.Advisor.Shortest_paths ->
            let landmarks = Cutfit.Sssp.pick_landmarks ~seed ~count:5 g in
            let d = Cutfit.Sssp.run_csr ~domains ~rounds ~landmarks c in
            let reached = ref 0 in
            Array.iter (fun row -> if row.(0) < max_int then incr reached) d;
            Fmt.pr "vertices reaching landmark 0: %d@." !reached);
        let elapsed = Cutfit.Clock.wall () -. t0 in
        let scans = edges * !rounds in
        Fmt.pr "csr engine: %d domain(s), %d superstep(s), %.4f s measured, %s edge scans/s@."
          domains !rounds elapsed
          (Cutfit_experiments.Report.commas
             (int_of_float (float_of_int scans /. Float.max elapsed 1e-9)));
        finish_telemetry ();
        exit_ok
    | Boxed ->
        let trace =
          match algo with
          | Cutfit.Advisor.Pagerank ->
              let ranks, trace = Cutfit.Pipeline.pagerank p in
              let top = ref 0 in
              Array.iteri (fun v r -> if r > ranks.(!top) then top := v) ranks;
              Fmt.pr "top vertex: %d (rank %.3f)@." !top ranks.(!top);
              trace
          | Cutfit.Advisor.Connected_components ->
              let labels, trace = Cutfit.Pipeline.connected_components p in
              let distinct = List.length (List.sort_uniq compare (Array.to_list labels)) in
              Fmt.pr "components (labels after 10 iterations): %d@." distinct;
              trace
          | Cutfit.Advisor.Triangle_count ->
              let _, total, trace = Cutfit.Pipeline.triangles p in
              Fmt.pr "triangles: %s@." (Cutfit_experiments.Report.commas total);
              trace
          | Cutfit.Advisor.Shortest_paths ->
              let landmarks = Cutfit.Sssp.pick_landmarks ~seed ~count:5 g in
              let d, trace = Cutfit.Pipeline.shortest_paths ~landmarks p in
              let reached = ref 0 in
              Array.iter (fun row -> if row.(0) < max_int then incr reached) d;
              Fmt.pr "vertices reaching landmark 0: %d@." !reached;
              trace
        in
        Fmt.pr "%a@." Cutfit.Trace.pp_summary trace;
        (match elastic with
        | Some _ ->
            Fmt.pr "reshuffles: %d membership change(s), %s bytes re-shipped@."
              (Cutfit.Trace.num_reshuffles trace)
              (Cutfit_experiments.Report.commas
                 (int_of_float (Cutfit.Trace.total_reshuffle_wire_bytes trace)))
        | None -> ());
        finish_telemetry ();
        (* A run whose cluster died past the crash budget is a failed job. *)
        if trace.Cutfit.Trace.outcome = Cutfit.Trace.Aborted then exit_failure else exit_ok
  in
  let capability_arg =
    let doc =
      "Partition with the capability-aware placement: edges are hashed into speed-weighted \
       ranges so faster hosts (per $(b,--hetero)) receive proportionally more of the cut. \
       Requires $(b,--hetero); mutually exclusive with $(b,--partitioner)."
    in
    Arg.(value & flag & info [ "capability" ] ~doc)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an algorithm on a partitioned graph and print the simulated trace.")
    Term.(
      const action $ algo_arg $ graph_pos1 $ config_arg $ strategy
      $ seed_arg ~default:5L ~doc:"Seed of the SSSP landmark choice (other algorithms ignore it)."
      $ engine_arg $ domains_arg $ faults_spec_arg $ checkpoint_every_arg $ fault_seed_arg
      $ fault_mode_arg $ max_failures_arg $ speculate_arg $ speculate_threshold_arg
      $ scale_events_arg $ hetero_arg $ capability_arg
      $ trace_out_arg $ verbose_supersteps_arg $ paranoid_arg)

(* --- compare --- *)

let compare_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let action algo graph config seed faults_spec checkpoint_every fault_seed fault_mode
      max_failures speculate speculate_threshold trace_out verbose paranoid =
    let g = load_graph graph in
    let faults =
      faults_of_flags ~spec:faults_spec ~fault_seed ~max_failures ~mode:fault_mode
    in
    let speculation =
      speculation_of_flags ~speculate ~threshold:speculate_threshold ~fault_seed
    in
    let telemetry, finish_telemetry = telemetry_of_flags ~trace_out ~verbose in
    List.iter
      (fun (name, t) -> Fmt.pr "%-10s %s@." name (Cutfit_experiments.Report.seconds t))
      (with_violation_report (fun () ->
           Cutfit.Pipeline.compare_partitioners ~check:paranoid ~cluster:config ~seed
             ?checkpoint_every ?faults ?speculation ?telemetry ~algorithm:algo g));
    finish_telemetry ();
    exit_ok
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare simulated job time across the six partitioners.")
    Term.(
      const action $ algo_arg $ graph_pos1 $ config_arg
      $ seed_arg ~default:11L ~doc:"Seed of the SSSP landmark choice (other algorithms ignore it)."
      $ faults_spec_arg $ checkpoint_every_arg $ fault_seed_arg $ fault_mode_arg
      $ max_failures_arg $ speculate_arg $ speculate_threshold_arg $ trace_out_arg
      $ verbose_supersteps_arg $ paranoid_arg)

(* --- workload --- *)

let workload_cmd =
  let module W = Cutfit_workload in
  let mix_arg =
    let doc =
      Printf.sprintf "Job mix: %s." (String.concat ", " Cutfit_workload.Job.mix_names)
    in
    Arg.(value & opt string "uniform" & info [ "m"; "mix" ] ~docv:"MIX" ~doc)
  in
  let jobs_arg =
    Arg.(value & opt int 40 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of jobs to generate.")
  in
  let policy_arg =
    Arg.(
      value & opt string "fifo"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Scheduling policy: fifo, or sjf (shortest predicted job first).")
  in
  let select_arg =
    Arg.(
      value & opt string "cache-aware"
      & info [ "select" ] ~docv:"MODE"
          ~doc:
            "Strategy selection per job: heuristic (the paper's rules), measured (rank all \
             candidates), or cache-aware (prefer a cached partitioning when its predicted \
             penalty is below the threshold).")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"T"
          ~doc:
            "Cache-aware acceptance threshold: maximum relative predictive-metric penalty of a \
             cached strategy over the best one.")
  in
  let cache_gb_arg =
    Arg.(
      value & opt float 8.0
      & info [ "cache-gb" ] ~docv:"GB"
          ~doc:"Partitioning-cache budget in paper-scale gigabytes; 0 disables the cache.")
  in
  let eviction_arg =
    Arg.(
      value & opt string "lru"
      & info [ "eviction" ] ~docv:"POLICY"
          ~doc:"Cache eviction policy: lru, or cost (cheapest to rebuild per byte goes first).")
  in
  let slots_arg =
    Arg.(value & opt int 2 & info [ "slots" ] ~docv:"K" ~doc:"Concurrent executor slots.")
  in
  let verbose_events_arg =
    Arg.(
      value & flag
      & info [ "verbose-events" ] ~doc:"Print every job and cache event as the simulation runs.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the workload sanitizer: cache accounting conservation, per-job cost \
             decomposition, event-vs-record reconciliation, and the run-twice determinism \
             digest. Exits non-zero on any violation.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Requeue a job whose cluster died up to $(docv) times (capped exponential \
             backoff); past that the job fails permanently.")
  in
  let queue_bound_arg =
    Arg.(
      value & opt (some int) None
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admission-control queue capacity: a first-attempt job meeting a full queue is \
             shed per $(b,--shed-policy). Retries bypass the bound. Unbounded by default.")
  in
  let shed_policy_arg =
    Arg.(
      value & opt string "reject"
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:
            "What to shed when the bounded queue is full: $(b,reject) (the incoming job) or \
             $(b,drop-oldest) (displace the longest-waiting queued job).")
  in
  let deadline_s_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-s" ] ~docv:"S"
          ~doc:
            "Absolute per-job SLO deadline: arrival + $(docv) simulated seconds. A queued job \
             past its deadline is culled; a running job is cancelled at the deadline instant.")
  in
  let deadline_factor_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-factor" ] ~docv:"F"
          ~doc:
            "Predicted-service SLO deadline: arrival + $(docv) x the advisor-predicted service \
             time at admission. Mutually exclusive with $(b,--deadline-s).")
  in
  let breaker_k_arg =
    Arg.(
      value & opt (some int) None
      & info [ "breaker-k" ] ~docv:"K"
          ~doc:
            "Arm a per-(dataset, strategy) circuit breaker: $(docv) consecutive failed \
             attempts open it, degrading selection to the cheapest cached strategy until a \
             probe succeeds after the cooldown.")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt float 60.0
      & info [ "breaker-cooldown" ] ~docv:"S"
          ~doc:"Seconds an open breaker blocks its strategy before a half-open probe.")
  in
  let backpressure_arg =
    Arg.(
      value & opt (some int) None
      & info [ "backpressure" ] ~docv:"N"
          ~doc:
            "Queue-depth watermark past which strategy selection degrades to the cheapest \
             cached partitioning (skip builds while the cluster is drowning).")
  in
  let mutations_arg =
    let doc =
      "Interleave seeded edge mutation batches with the jobs: every $(b,--mutate-every)-th \
       launch first lands the next batch on its own dataset, partially invalidating the cache \
       and taking the priced refresh-vs-rebuild decision per $(b,--mutation-mode). $(docv) is \
       a comma-separated list of $(b,ins\\@B)[:rN] and $(b,del\\@B)[:rN] items (B a batch \
       number or window $(b,B-C); N edges, default 32)."
    in
    Arg.(value & opt (some string) None & info [ "mutations" ] ~docv:"SPEC" ~doc)
  in
  let mutate_every_arg =
    Arg.(
      value & opt int 8
      & info [ "mutate-every" ] ~docv:"N"
          ~doc:"Job launches between mutation batches (with $(b,--mutations)).")
  in
  let mutation_mode_arg =
    Arg.(
      value & opt string "priced"
      & info [ "mutation-mode" ] ~docv:"MODE"
          ~doc:
            "Refresh-vs-rebuild decision per batch: $(b,priced) (ask the cost model), \
             $(b,refresh) (always repair incrementally), or $(b,rebuild) (always drop cold).")
  in
  let tenants_arg =
    let doc =
      "Tag the job stream with tenants: a comma-separated list of $(b,NAME)[:$(b,SHARE)] \
       entries (share defaults to 1). Each job's owner is a seeded weighted draw, so the \
       stream stays bit-reproducible; without this flag every job belongs to the single \
       default tenant."
    in
    Arg.(value & opt (some string) None & info [ "tenants" ] ~docv:"SPEC" ~doc)
  in
  let tenant_weights_arg =
    let doc =
      "Fair-share weights for $(b,--fairness): comma-separated $(b,NAME)[:$(b,WEIGHT)] \
       entries (weight defaults to 1; unlisted tenants get 1). A tenant with weight 2 is \
       entitled to twice the busy time of a tenant with weight 1."
    in
    Arg.(value & opt (some string) None & info [ "tenant-weights" ] ~docv:"SPEC" ~doc)
  in
  let fairness_arg =
    let doc =
      "Weighted fair sharing across tenants: each freed slot goes to the runnable tenant with \
       the smallest busy-time/weight deficit, with $(b,--policy) ordering jobs within the \
       chosen tenant. The scheduler's choices are independently recounted \
       ($(b,fairness_violations) must stay 0)."
    in
    Arg.(value & flag & info [ "fairness" ] ~doc)
  in
  let tenant_quota_arg =
    let doc =
      "Per-tenant admission quota: a first-attempt job finding $(docv) of its tenant's jobs \
       already pending is shed with policy $(b,quota) (and a $(b,Tenant_throttle) event). \
       Retries bypass the quota."
    in
    Arg.(value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let tenant_deadline_arg =
    let doc =
      "Per-tenant SLO overrides: comma-separated $(b,NAME):$(b,SECONDS) entries giving the \
       tenant's jobs an absolute arrival-relative deadline, overriding $(b,--deadline-s) / \
       $(b,--deadline-factor) for that tenant."
    in
    Arg.(value & opt (some string) None & info [ "tenant-deadline" ] ~docv:"SPEC" ~doc)
  in
  let action mix_name jobs seed policy_name select_name threshold cache_gb eviction_name slots
      faults_spec checkpoint_every fault_seed fault_mode max_failures max_retries speculate
      speculate_threshold queue_bound shed_policy_name deadline_s deadline_factor breaker_k
      breaker_cooldown backpressure mutations_spec mutation_seed mutate_every mutation_mode_name
      scale_events_spec tenants_spec tenant_weights_spec fairness tenant_quota
      tenant_deadline_spec trace_out verbose check =
    let fail fmt = usage_fail fmt in
    let mix =
      match W.Job.find_mix mix_name with
      | Some m -> m
      | None -> fail "unknown mix %S (expected one of: %s)" mix_name (String.concat ", " W.Job.mix_names)
    in
    let policy =
      match W.Engine.policy_of_string policy_name with
      | Some p -> p
      | None -> fail "unknown policy %S (fifo, sjf)" policy_name
    in
    let selection =
      match W.Engine.selection_of_string ~threshold select_name with
      | Some s -> s
      | None -> fail "unknown selection mode %S (heuristic, measured, cache-aware)" select_name
    in
    let eviction =
      match W.Cache.eviction_of_string eviction_name with
      | Some e -> e
      | None -> fail "unknown eviction policy %S (lru, cost)" eviction_name
    in
    let faults =
      faults_of_flags ~spec:faults_spec ~fault_seed ~max_failures ~mode:fault_mode
    in
    let speculation =
      speculation_of_flags ~speculate ~threshold:speculate_threshold ~fault_seed
    in
    let shed_policy =
      match W.Engine.shed_policy_of_string shed_policy_name with
      | Some p -> p
      | None -> fail "unknown shed policy %S (reject, drop-oldest)" shed_policy_name
    in
    let deadline =
      match (deadline_s, deadline_factor) with
      | None, None -> None
      | Some s, None ->
          if s <= 0.0 then fail "deadline-s must be positive (got %g)" s;
          Some (W.Engine.Absolute s)
      | None, Some f ->
          if f <= 0.0 then fail "deadline-factor must be positive (got %g)" f;
          Some (W.Engine.Factor f)
      | Some _, Some _ -> fail "--deadline-s and --deadline-factor are mutually exclusive"
    in
    (match queue_bound with
    | Some b when b < 1 -> fail "queue-bound must be >= 1 (got %d)" b
    | _ -> ());
    (match breaker_k with
    | Some k when k < 1 -> fail "breaker-k must be >= 1 (got %d)" k
    | _ -> ());
    (match backpressure with
    | Some w when w < 0 -> fail "backpressure must be >= 0 (got %d)" w
    | _ -> ());
    if breaker_cooldown < 0.0 then fail "breaker-cooldown must be >= 0 (got %g)" breaker_cooldown;
    if max_retries < 0 then fail "max-retries must be >= 0 (got %d)" max_retries;
    let mutations = mutations_of_flags ~spec:mutations_spec ~seed:mutation_seed in
    if mutate_every < 1 then fail "mutate-every must be >= 1 (got %d)" mutate_every;
    let mutation_mode =
      match W.Engine.mutation_mode_of_string mutation_mode_name with
      | Some m -> m
      | None -> fail "unknown mutation mode %S (priced, refresh, rebuild)" mutation_mode_name
    in
    let scale_events = elastic_of_flags ~spec:scale_events_spec ~fault_seed in
    (* NAME[:VALUE] comma lists shared by --tenants / --tenant-weights /
       --tenant-deadline. Tenant names must be usable as breaker-scope
       prefixes, so '/' is rejected here with exit 2 rather than letting
       the engine's Invalid_argument map to exit 1. *)
    let tenant_entries ~flag spec =
      List.filter_map
        (fun item ->
          let item = String.trim item in
          if item = "" then None
          else
            let name, value =
              match String.index_opt item ':' with
              | None -> (item, None)
              | Some i ->
                  let v = String.sub item (i + 1) (String.length item - i - 1) in
                  (match float_of_string_opt v with
                  | Some v -> (String.trim (String.sub item 0 i), Some v)
                  | None -> fail "bad --%s entry %S (expected NAME[:NUMBER])" flag item)
            in
            if name = "" || String.contains name '/' then
              fail "bad --%s tenant name %S (nonempty, no '/')" flag name;
            (match value with
            | Some v when v <= 0.0 -> fail "bad --%s entry %S (value must be positive)" flag item
            | _ -> ());
            Some (name, value))
        (String.split_on_char ',' spec)
    in
    let tenants =
      match tenants_spec with
      | None -> None
      | Some s -> (
          match
            List.map (fun (n, v) -> (n, Option.value ~default:1.0 v)) (tenant_entries ~flag:"tenants" s)
          with
          | [] -> None
          | l -> Some l)
    in
    let tenant_weights =
      match tenant_weights_spec with
      | None -> []
      | Some s ->
          List.map
            (fun (n, v) -> (n, Option.value ~default:1.0 v))
            (tenant_entries ~flag:"tenant-weights" s)
    in
    let tenant_deadlines =
      match tenant_deadline_spec with
      | None -> []
      | Some s ->
          List.map
            (fun (n, v) ->
              match v with
              | Some secs -> (n, W.Engine.Absolute secs)
              | None -> fail "bad --tenant-deadline entry %S (expected NAME:SECONDS)" n)
            (tenant_entries ~flag:"tenant-deadline" s)
    in
    (match tenant_quota with
    | Some q when q < 1 -> fail "tenant-quota must be >= 1 (got %d)" q
    | _ -> ());
    let stream = W.Job.generate ~seed ~jobs ?tenants mix in
    let ring, read_ring = Cutfit.Sink.ring ~capacity:65536 () in
    let sinks =
      (match trace_out with Some path -> [ Cutfit.Sink.jsonl path ] | None -> [])
      @ (if verbose then [ Cutfit.Sink.console ~verbose:true Format.std_formatter ] else [])
      @ if check then [ ring ] else []
    in
    let telemetry = if sinks = [] then None else Some (Cutfit.Telemetry.create ~sinks ()) in
    let budget_bytes = cache_gb *. 1.0e9 in
    let report =
      W.Engine.run ~slots ~eviction ~budget_bytes ?checkpoint_every ?faults ?speculation
        ~max_retries ?queue_bound ~shed_policy ?deadline ?breaker_k
        ~breaker_cooldown_s:breaker_cooldown ?backpressure ~policy ~selection ?telemetry
        ?mutations ~mutate_every ~mutation_mode ?scale_events ~tenant_weights ?tenant_quota
        ~tenant_deadlines ~fairness ~seed stream
    in
    let rows =
      List.map
        (fun (r : W.Engine.job_record) ->
          [
            string_of_int r.W.Engine.job.W.Job.id;
            Cutfit.Advisor.algorithm_name r.W.Engine.job.W.Job.algorithm;
            Printf.sprintf "%s/%d" r.W.Engine.job.W.Job.dataset r.W.Engine.job.W.Job.num_partitions;
            r.W.Engine.strategy;
            (if r.W.Engine.cache_hit then "hit" else "miss");
            string_of_int r.W.Engine.attempts;
            Cutfit_experiments.Report.fsig r.W.Engine.queue_s;
            Cutfit_experiments.Report.fsig r.W.Engine.partition_s;
            Cutfit_experiments.Report.fsig r.W.Engine.exec_s;
            Cutfit_experiments.Report.fsig r.W.Engine.finish_s;
            r.W.Engine.outcome;
          ])
        report.W.Engine.records
    in
    Fmt.pr "%s@."
      (Cutfit_experiments.Report.table
         ~header:
           [ "job"; "algo"; "dataset"; "strategy"; "cache"; "try"; "queue"; "partition"; "exec";
             "finish"; "outcome" ]
         ~rows);
    Fmt.pr "%a@." W.Engine.pp_summary report;
    (match telemetry with Some t -> Cutfit.Telemetry.close t | None -> ());
    (match trace_out with
    | Some path -> Fmt.pr "wrote workload events to %s@." path
    | None -> ());
    let check_code =
      if not check then exit_ok
      else begin
        let violations = W.Workload_check.report ~events:(read_ring ()) report in
        let twice =
          W.Workload_check.run_twice ~label:(Printf.sprintf "workload %s seed %Ld" mix_name seed)
            (fun () ->
              W.Engine.run ~slots ~eviction ~budget_bytes ?checkpoint_every ?faults ?speculation
                ~max_retries ?queue_bound ~shed_policy ?deadline ?breaker_k
                ~breaker_cooldown_s:breaker_cooldown ?backpressure ~policy ~selection ?mutations
                ~mutate_every ~mutation_mode ?scale_events ~tenant_weights ?tenant_quota
                ~tenant_deadlines ~fairness ~seed
                (W.Job.generate ~seed ~jobs ?tenants mix))
        in
        match violations @ twice with
        | [] ->
            Fmt.pr "workload check: ok (digest %s)@." (W.Workload_check.digest report);
            exit_ok
        | vs ->
            Fmt.epr "cutfit: workload sanitizer violations:@.%a@." Cutfit.Check.Violation.pp_list
              vs;
            exit_failure
      end
    in
    if W.Engine.failed_jobs report > 0 then begin
      Fmt.epr "cutfit: %d job(s) failed permanently@." (W.Engine.failed_jobs report);
      exit_failure
    end
    else check_code
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Simulate a multi-job cluster workload: a seeded job stream scheduled over executor \
          slots, with advisor-driven strategy selection and a budgeted partitioning cache.")
    Term.(
      const action $ mix_arg $ jobs_arg
      $ seed_arg ~default:7L ~doc:"Seed of the job stream (and of each SSSP job's landmarks)."
      $ policy_arg $ select_arg $ threshold_arg $ cache_gb_arg $ eviction_arg $ slots_arg
      $ faults_spec_arg $ checkpoint_every_arg $ fault_seed_arg $ fault_mode_arg
      $ max_failures_arg $ max_retries_arg $ speculate_arg $ speculate_threshold_arg
      $ queue_bound_arg $ shed_policy_arg $ deadline_s_arg $ deadline_factor_arg $ breaker_k_arg
      $ breaker_cooldown_arg $ backpressure_arg $ mutations_arg $ mutation_seed_arg
      $ mutate_every_arg $ mutation_mode_arg $ scale_events_arg $ tenants_arg
      $ tenant_weights_arg $ fairness_arg $ tenant_quota_arg $ tenant_deadline_arg
      $ trace_out_arg $ verbose_events_arg $ check_arg)

(* --- check --- *)

let check_cmd =
  let graph_pos1 =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH" ~doc:"Dataset or file.")
  in
  let strategy =
    Arg.(value & opt (some partitioner_arg) None & info [ "p"; "partitioner" ] ~docv:"P" ~doc:"Partitioner (default: advised).")
  in
  let races_arg =
    let doc =
      "Add the $(b,races) suite: run the instrumented mirrors of the compact kernels under the \
       shadow write-ownership recorder at domain counts 1, 2, 4 and $(b,--domains), and \
       self-test the detector against two seeded race corruptions."
    in
    Arg.(value & flag & info [ "races" ] ~doc)
  in
  let dynamic_arg =
    let doc =
      "Add the $(b,dynamic) suite: replay $(docv) (a mutation spec; the flag alone uses \
       $(b,ins\\@1-2:r48,del\\@1-2:r16)) from a fresh streaming cut of the same graph and \
       prove the delta-identity, cut-law and refresh-rebuild-equivalence laws of the \
       dynamic-graph subsystem."
    in
    Arg.(
      value
      & opt ~vopt:(Some "ins@1-2:r48,del@1-2:r16") (some string) None
      & info [ "dynamic" ] ~docv:"SPEC" ~doc)
  in
  let elastic_check_arg =
    let doc =
      "Add the $(b,elastic) suite: run the pipeline under $(docv) (a scale-event spec; the \
       flag alone uses $(b,leave\\@2-1,join\\@4+2)), replay it on a static cluster, and prove \
       membership churn perturbed only time and locality — bit-identical vertex values, \
       unchanged placement-independent structure, an unbroken membership chain through the \
       reshuffle records."
    in
    Arg.(
      value
      & opt ~vopt:(Some "leave@2-1,join@4+2") (some string) None
      & info [ "elastic" ] ~docv:"SPEC" ~doc)
  in
  let action algo graph config partitioner engine domains races dynamic_spec mutation_seed
      faults_spec checkpoint_every fault_seed fault_mode max_failures speculate
      speculate_threshold elastic_spec hetero_spec =
    let g = load_graph graph in
    if domains < 1 then usage_fail "domains must be >= 1 (got %d)" domains;
    let dynamic = mutations_of_flags ~spec:dynamic_spec ~seed:mutation_seed in
    let faults =
      faults_of_flags ~spec:faults_spec ~fault_seed ~max_failures ~mode:fault_mode
    in
    let speculation =
      speculation_of_flags ~speculate ~threshold:speculate_threshold ~fault_seed
    in
    let elastic = elastic_of_flags ~spec:elastic_spec ~fault_seed in
    let hetero =
      hetero_of_flags ~spec:hetero_spec ~executors:config.Cutfit.Cluster.executors ~fault_seed
    in
    (* With the csr engine, also prove boxed-vs-csr bit-identity at the
       standard domain counts plus whatever --domains asked for. *)
    let engine_domains =
      match engine with
      | Boxed -> None
      | Csr_engine -> Some (List.sort_uniq Int.compare (domains :: [ 1; 2; 4 ]))
    in
    let race_domains =
      if races then Some (List.sort_uniq Int.compare (domains :: [ 1; 2; 4 ])) else None
    in
    let report =
      Cutfit.Sanitize.check_run ~cluster:config ?partitioner ?checkpoint_every ?faults
        ?speculation ?elastic ?hetero ?engine_domains ?race_domains ?dynamic ~algorithm:algo g
    in
    Fmt.pr "%a@." Cutfit.Sanitize.pp_report report;
    if Cutfit.Sanitize.ok report then exit_ok else exit_failure
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the full simulator sanitizer on one algorithm/graph pair: partition structure, \
          metrics recomputation, trace conservation laws, telemetry reconciliation, and the \
          run-twice determinism digest. With $(b,--faults) or $(b,--speculate), a sixth suite \
          proves the value-equivalence invariant against a clean baseline. With \
          $(b,--engine csr), an $(b,engines) suite proves the compact kernels reproduce the \
          boxed engine's values bit-for-bit at domain counts 1, 2, 4 and $(b,--domains). With \
          $(b,--races), a $(b,races) suite shadow-records every accumulator write of an \
          instrumented kernel run and verifies the item-owned-writes discipline. With \
          $(b,--dynamic), a $(b,dynamic) suite replays a mutation schedule and proves the \
          dynamic-graph laws. With $(b,--elastic) or $(b,--hetero), an $(b,elastic) suite \
          replays the run on a static homogeneous cluster and proves scale events perturbed \
          only time and locality. Exits non-zero on any violation.")
    Term.(
      const action $ algo_arg $ graph_pos1 $ config_arg $ strategy $ engine_arg $ domains_arg
      $ races_arg $ dynamic_arg $ mutation_seed_arg $ faults_spec_arg $ checkpoint_every_arg
      $ fault_seed_arg $ fault_mode_arg $ max_failures_arg $ speculate_arg
      $ speculate_threshold_arg $ elastic_check_arg $ hetero_arg)

(* --- mutate --- *)

let mutate_cmd =
  let heuristic_arg =
    let parse s =
      match Cutfit.Streaming.of_string s with
      | Some h -> Ok h
      | None -> Error (`Msg (Printf.sprintf "unknown streaming heuristic %S" s))
    in
    let print ppf h = Fmt.string ppf (Cutfit.Streaming.to_string h) in
    Arg.(
      value
      & opt (conv (parse, print)) Cutfit.Streaming.Greedy
      & info [ "H"; "heuristic" ] ~docv:"H"
          ~doc:
            "Streaming heuristic maintaining the live cut: $(b,dbh), $(b,greedy), \
             $(b,hdrf)[:L] or $(b,hybrid)[:T].")
  in
  let spec_arg =
    let doc =
      "Mutation spec: comma-separated $(b,ins\\@B)[:rN] and $(b,del\\@B)[:rN] items, where B \
       is a batch number or window $(b,B-C) and N the edge count (default 32)."
    in
    Arg.(value & opt string "ins@1-4:r64,del@1-4:r16" & info [ "mutations" ] ~docv:"SPEC" ~doc)
  in
  let batches_arg =
    Arg.(
      value & opt (some int) None
      & info [ "batches" ] ~docv:"B"
          ~doc:"Batches to apply (default: the spec's own horizon).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run the dynamic sanitizer suite over the same schedule (delta-identity, cut \
             laws, refresh-rebuild value equivalence); exits non-zero on any violation.")
  in
  let action graph n config spec heuristic batches mutation_seed check =
    if n < 1 then usage_fail "partitions must be >= 1 (got %d)" n;
    (match batches with
    | Some b when b < 1 -> usage_fail "batches must be >= 1 (got %d)" b
    | _ -> ());
    let cfg =
      match mutations_of_flags ~spec:(Some spec) ~seed:mutation_seed with
      | Some c -> c
      | None -> assert false
    in
    let g = load_graph graph in
    let steps = Cutfit.Repartition.run ~cluster:config ?batches ~heuristic ~num_partitions:n cfg g in
    let fsig = Cutfit_experiments.Report.fsig in
    let rows =
      List.map
        (fun (s : Cutfit.Repartition.step) ->
          let d = s.Cutfit.Repartition.decision in
          [
            string_of_int d.Cutfit.Repartition.batch;
            Printf.sprintf "+%d/-%d" d.Cutfit.Repartition.inserts d.Cutfit.Repartition.deletes;
            string_of_int d.Cutfit.Repartition.edges_after;
            fsig d.Cutfit.Repartition.refresh_s;
            fsig d.Cutfit.Repartition.rebuild_s;
            Cutfit.Repartition.choice_name d.Cutfit.Repartition.choice;
            string_of_int d.Cutfit.Repartition.moved_replicas;
            Printf.sprintf "%.3f" s.Cutfit.Repartition.metrics.Cutfit.Metrics.replication_factor;
            Printf.sprintf "%.3f" s.Cutfit.Repartition.metrics.Cutfit.Metrics.balance;
          ])
        steps
    in
    Fmt.pr "mutations %s on %s: %s cut, %d partition(s)@." (Cutfit.Mutation.describe cfg) graph
      (Cutfit.Streaming.to_string heuristic) n;
    Fmt.pr "%s@."
      (Cutfit_experiments.Report.table
         ~header:
           [ "batch"; "delta"; "edges"; "refresh"; "rebuild"; "choice"; "moved"; "RF"; "balance" ]
         ~rows);
    let refreshes =
      List.length
        (List.filter
           (fun (s : Cutfit.Repartition.step) ->
             s.Cutfit.Repartition.decision.Cutfit.Repartition.choice = Cutfit.Repartition.Refresh)
           steps)
    in
    Fmt.pr "%d batch(es): %d refresh / %d rebuild@." (List.length steps) refreshes
      (List.length steps - refreshes);
    if not check then exit_ok
    else begin
      match
        Cutfit.Dyn_check.validate ~cluster:config ?batches ~heuristic ~num_partitions:n cfg g
      with
      | [] ->
          Fmt.pr "dynamic check: ok@.";
          exit_ok
      | vs ->
          Fmt.epr "cutfit: dynamic sanitizer violations:@.%a@." Cutfit.Check.Violation.pp_list vs;
          exit_failure
    end
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Stream a seeded edge mutation schedule over a graph: apply each insert/delete batch, \
          repair the live streaming cut incrementally, and print the priced refresh-vs-rebuild \
          decision per batch.")
    Term.(
      const action $ graph_arg $ partitions_arg $ config_arg $ spec_arg $ heuristic_arg
      $ batches_arg $ mutation_seed_arg $ check_arg)

let () =
  let doc = "Tailor graph partitioning to the computation (Cut to Fit)." in
  let info = Cmd.info "cutfit" ~version:"1.0.0" ~doc in
  (* Exit-code contract: actions return 0 (success) or 1 (violation /
     failed job); cmdliner usage problems map to 2; an escaped
     exception maps to 1 rather than cmdliner's 125. *)
  exit
    (match
       Cmd.eval_value
         (Cmd.group info
            [ datasets_cmd; generate_cmd; characterize_cmd; partition_cmd; advise_cmd; run_cmd;
              compare_cmd; workload_cmd; mutate_cmd; check_cmd ])
     with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> exit_ok
    | Error (`Parse | `Term) -> exit_usage
    | Error `Exn -> exit_failure)
