(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation, plus the repo's own ablations and micro-benchmarks.

   Usage: main.exe [section ...]
   Sections: table1 figure1 figure2 table2 table3 figure3 figure4
             figure5 figure6 checks infra ablation advisor costmodel
             sweep engines workload faults resilience elastic speed
             telemetry export micro all (default: all)

   The (dataset x partitioner x configuration x algorithm) matrix is
   computed once and shared by figure3..6, checks and advisor. *)

module E = Cutfit_experiments
module Run = E.Run

let section name f =
  Format.printf "@.==================================================@.";
  Format.printf "== %s@." name;
  Format.printf "==================================================@.";
  f Format.std_formatter;
  Format.print_flush ()

let matrix = lazy (Run.run { Run.default_options with Run.progress = true })

(* --- paper tables / dataset figures --- *)

let table1 = E.Tables.table1
let figure1 = E.Figures.figure1
let figure2 = E.Figures.figure2
let table2 ppf = E.Tables.partition_metrics ~num_partitions:128 ppf
let table3 ppf = E.Tables.partition_metrics ~num_partitions:256 ppf

let figure_for algo metric ppf = E.Figures.figure_algo (Lazy.force matrix) algo ~metric ppf

let checks ppf = E.Expectations.summary ppf (E.Expectations.check_all (Lazy.force matrix))

let infra ppf = E.Infra.report ppf (E.Infra.run ())

let export ppf =
  let path = "results.csv" in
  let ms = Lazy.force matrix in
  E.Export.save path ms;
  let json_path = "results.json" in
  E.Export.write_json json_path (E.Export.json_of_measurements ms);
  Format.fprintf ppf "wrote the full evaluation matrix to %s and %s@." path json_path

(* --- A1: streaming partitioners vs the paper's six --- *)

let ablation_streaming ppf =
  Format.fprintf ppf
    "Streaming/degree-aware baselines (DBH / Greedy / HDRF / Hybrid) vs the paper's six,@.\
     PageRank at 128 partitions on the two smaller social analogues:@.";
  List.iter
    (fun name ->
      let spec = Cutfit.Datasets.find name in
      let g = Cutfit.Datasets.generate spec in
      let scale = Run.scale_of spec g in
      Format.fprintf ppf "@.%s:@." spec.Cutfit.Datasets.display;
      let rows =
        List.map
          (fun p ->
            let a = Cutfit.Partitioner.assign p ~num_partitions:128 g in
            let m = Cutfit.Metrics.compute g ~num_partitions:128 a in
            let pg = Cutfit.Pgraph.build g ~num_partitions:128 a in
            let r = Cutfit.Pagerank.run ~scale ~cluster:Cutfit.Cluster.config_i pg in
            [
              Cutfit.Partitioner.name p;
              Printf.sprintf "%.2f" m.Cutfit.Metrics.balance;
              E.Report.commas m.Cutfit.Metrics.comm_cost;
              E.Report.seconds r.Cutfit.Pagerank.trace.Cutfit.Trace.total_s;
            ])
          (Cutfit.Partitioner.paper_six @ Cutfit.Partitioner.streaming_baselines)
      in
      Format.fprintf ppf "%s@."
        (E.Report.table ~header:[ "Partitioner"; "Balance"; "CommCost"; "PR time" ] ~rows))
    [ "youtube"; "pocek" ]

(* --- A2: the advisor's heuristic vs every fixed strategy --- *)

let ablation_advisor ppf =
  let ms = Lazy.force matrix in
  Format.fprintf ppf
    "Regret of the paper-rule advisor (heuristic mode) against the best@.\
     fixed strategy per (dataset, configuration), simulated job time:@.@.";
  List.iter
    (fun (algo, advisor_algo) ->
      let cells = Run.filter ~algo ms in
      let regrets = ref [] and wins = ref 0 and total = ref 0 in
      List.iter
        (fun spec ->
          List.iter
            (fun config ->
              let mine =
                List.filter
                  (fun m ->
                    m.Run.dataset.Cutfit.Datasets.name = spec.Cutfit.Datasets.name
                    && m.Run.config = config && m.Run.completed)
                  cells
              in
              match mine with
              | [] -> ()
              | first :: _ ->
                  let num_partitions = (Cutfit.Cluster.find config).Cutfit.Cluster.num_partitions in
                  let size =
                    Cutfit.Advisor.classify
                      ~paper_scale_edges:(float_of_int spec.Cutfit.Datasets.paper_edges)
                  in
                  let pick =
                    Cutfit.Strategy.to_string
                      (Cutfit.Advisor.heuristic advisor_algo ~size ~num_partitions)
                  in
                  let best =
                    List.fold_left
                      (fun b m -> if m.Run.time_s < b.Run.time_s then m else b)
                      first mine
                  in
                  (match List.find_opt (fun m -> m.Run.partitioner = pick) mine with
                  | Some chosen ->
                      incr total;
                      if chosen.Run.partitioner = best.Run.partitioner then incr wins;
                      regrets :=
                        (100.0 *. (chosen.Run.time_s -. best.Run.time_s) /. best.Run.time_s)
                        :: !regrets
                  | None -> ()))
            [ "(i)"; "(ii)" ])
        Cutfit.Datasets.all;
      if !total > 0 then begin
        let mean =
          List.fold_left ( +. ) 0.0 !regrets /. float_of_int (List.length !regrets)
        in
        let worst = List.fold_left Float.max 0.0 !regrets in
        Format.fprintf ppf "%-5s picked the winner %d/%d times; mean regret %.1f%%, worst %.1f%%@."
          (Run.algo_name algo) !wins !total mean worst
      end)
    [
      (Run.Pagerank, Cutfit.Advisor.Pagerank);
      (Run.Connected_components, Cutfit.Advisor.Connected_components);
      (Run.Triangle_count, Cutfit.Advisor.Triangle_count);
      (Run.Shortest_paths, Cutfit.Advisor.Shortest_paths);
    ]

(* --- cost-model ablation: the per-cut-vertex reduction term --- *)

let ablation_costmodel ppf =
  Format.fprintf ppf
    "DESIGN.md flags the triangle-count per-cut-vertex reduction overhead@.\
     as a modeled assumption; this ablation shows what it does. TR on the@.\
     Pocek analogue at 128 partitions, sweeping cut_vertex_reduce_s:@.@.";
  let spec = Cutfit.Datasets.find "pocek" in
  let g = Cutfit.Datasets.generate spec in
  let scale = Run.scale_of spec g in
  let und = Cutfit.Graph.symmetrize g in
  let header = "cut_vertex_reduce_s" :: List.map Cutfit.Strategy.to_string Cutfit.Strategy.all in
  let rows =
    List.map
      (fun factor ->
        let base = Cutfit.Cost_model.default in
        let cost =
          { base with Cutfit.Cost_model.cut_vertex_reduce_s =
              base.Cutfit.Cost_model.cut_vertex_reduce_s *. factor }
        in
        Printf.sprintf "%.0fx" factor
        :: List.map
             (fun s ->
               let a =
                 Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash s) ~num_partitions:128 g
               in
               let pg = Cutfit.Pgraph.build g ~num_partitions:128 a in
               let r =
                 Cutfit.Triangle_count.run ~scale ~cost ~undirected:und
                   ~cluster:Cutfit.Cluster.config_i pg
               in
               E.Report.seconds r.Cutfit.Triangle_count.trace.Cutfit.Trace.total_s)
             Cutfit.Strategy.all)
      [ 0.0; 1.0; 4.0 ]
  in
  Format.fprintf ppf "%s@." (E.Report.table ~header ~rows)

(* --- granularity sweep: time vs partition count --- *)

let sweep ppf =
  Format.fprintf ppf
    "The paper's contribution list includes \"partitioning depends on the@.\
     number of partitions\"; configs (i)/(ii) probe only 128 vs 256. This@.\
     sweep runs PR and CC on the Pocek analogue from 32 to 512 partitions@.\
     (advised strategy at each point), showing where each algorithm's@.\
     sweet spot sits:@.@.";
  let spec = Cutfit.Datasets.find "pocek" in
  let g = Cutfit.Datasets.generate spec in
  let scale = Run.scale_of spec g in
  let counts = [ 32; 64; 128; 256; 512 ] in
  let header = "Partitions" :: List.map string_of_int counts in
  let time_row name algo =
    name
    :: List.map
         (fun num_partitions ->
           let cluster =
             { Cutfit.Cluster.config_i with Cutfit.Cluster.name = "(sweep)"; num_partitions }
           in
           let strategy = Cutfit.Advisor.advise algo ~scale ~num_partitions g in
           let a =
             Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash strategy) ~num_partitions g
           in
           let pg = Cutfit.Pgraph.build g ~num_partitions a in
           let trace =
             match algo with
             | Cutfit.Advisor.Pagerank ->
                 (Cutfit.Pagerank.run ~scale ~cluster pg).Cutfit.Pagerank.trace
             | Cutfit.Advisor.Connected_components | Cutfit.Advisor.Triangle_count
             | Cutfit.Advisor.Shortest_paths ->
                 (Cutfit.Connected_components.run ~scale ~cluster pg)
                   .Cutfit.Connected_components.trace
           in
           Printf.sprintf "%s (%s)" (E.Report.seconds trace.Cutfit.Trace.total_s)
             (Cutfit.Strategy.to_string strategy))
         counts
  in
  let rows =
    [ time_row "PR" Cutfit.Advisor.Pagerank; time_row "CC" Cutfit.Advisor.Connected_components ]
  in
  Format.fprintf ppf "%s@." (E.Report.table ~header ~rows)

(* --- engine comparison: Pregel vs GAS (Verma et al.-style) --- *)

let engines ppf =
  Format.fprintf ppf
    "PageRank under GraphX-style Pregel vs PowerGraph-style GAS on the@.     same partitionings (Pocek analogue, 128 partitions). The related@.     work the paper builds on (Verma et al.) found partitioner rankings@.     differ across engines; the gather-side aggregation changes which@.     strategy minimizes traffic:@.@.";
  let spec = Cutfit.Datasets.find "pocek" in
  let g = Cutfit.Datasets.generate spec in
  let scale = Run.scale_of spec g in
  let rows =
    List.map
      (fun strategy ->
        let a =
          Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash strategy) ~num_partitions:128 g
        in
        let pg = Cutfit.Pgraph.build g ~num_partitions:128 a in
        let pregel = Cutfit.Pagerank.run ~scale ~cluster:Cutfit.Cluster.config_i pg in
        let gas = Cutfit.Pagerank.run_gas ~scale ~cluster:Cutfit.Cluster.config_i pg in
        let agree =
          Array.for_all2
            (fun x y -> abs_float (x -. y) < 1e-9)
            pregel.Cutfit.Pagerank.ranks gas.Cutfit.Pagerank.ranks
        in
        [
          Cutfit.Strategy.to_string strategy;
          E.Report.seconds pregel.Cutfit.Pagerank.trace.Cutfit.Trace.total_s;
          E.Report.seconds gas.Cutfit.Pagerank.trace.Cutfit.Trace.total_s;
          (if agree then "yes" else "NO");
        ])
      Cutfit.Strategy.all
  in
  Format.fprintf ppf "%s@."
    (E.Report.table ~header:[ "Partitioner"; "Pregel"; "GAS"; "ranks agree" ] ~rows)

(* --- workload: scheduling policies x partitioning-cache budgets --- *)

module W = Cutfit_workload
module Json = Cutfit.Json

let workload ppf =
  let mix =
    match W.Job.find_mix "reuse-heavy" with
    | Some m -> m
    | None -> invalid_arg "bench: reuse-heavy mix missing"
  in
  let seed = 7L and n_jobs = 30 in
  let jobs = W.Job.generate ~seed ~jobs:n_jobs mix in
  Format.fprintf ppf
    "%d jobs from the %S mix (%s),@.\
     replayed under scheduler / selection / cache-budget configurations.@.\
     Every run replays the identical stream, so the columns are directly@.\
     comparable; 'fifo + measured + 0 GB' is the no-cache baseline.@.@."
    n_jobs mix.W.Job.name mix.W.Job.description;
  let gb = 1.0e9 in
  let configs =
    [
      (W.Engine.Fifo, W.Engine.Measured, 0.0, W.Cache.Lru);
      (W.Engine.Fifo, W.Engine.Cache_aware 0.25, 2.0, W.Cache.Lru);
      (W.Engine.Fifo, W.Engine.Cache_aware 0.25, 8.0, W.Cache.Lru);
      (W.Engine.Sjf, W.Engine.Cache_aware 0.25, 8.0, W.Cache.Cost_aware);
    ]
  in
  let reports =
    List.map
      (fun (policy, selection, budget_gb, eviction) ->
        let r =
          W.Engine.run ~policy ~selection ~eviction ~budget_bytes:(budget_gb *. gb) ~seed jobs
        in
        (budget_gb, r))
      configs
  in
  let rows =
    List.map
      (fun (budget_gb, (r : W.Engine.report)) ->
        [
          W.Engine.policy_name r.W.Engine.policy;
          W.Engine.selection_name r.W.Engine.selection;
          Printf.sprintf "%.0f GB" budget_gb;
          W.Cache.eviction_name r.W.Engine.eviction;
          Printf.sprintf "%.0f%%" (100.0 *. W.Engine.hit_rate r);
          string_of_int r.W.Engine.cache.W.Cache.evictions;
          Printf.sprintf "%.1f" r.W.Engine.makespan_s;
          Printf.sprintf "%.2f" (W.Engine.mean_queue_s r);
          Printf.sprintf "%.1f" r.W.Engine.total_partition_s;
          Printf.sprintf "%.1f" r.W.Engine.total_exec_s;
        ])
      reports
  in
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:
         [
           "Policy"; "Selection"; "Budget"; "Evict"; "Hit rate"; "Evictions"; "Makespan s";
           "Mean queue s"; "Partition s"; "Exec s";
         ]
       ~rows);
  (match reports with
  | (_, baseline) :: rest ->
      let cached =
        List.filter
          (fun (_, (r : W.Engine.report)) ->
            match r.W.Engine.selection with W.Engine.Cache_aware _ -> true | _ -> false)
          rest
      in
      List.iter
        (fun (budget_gb, (r : W.Engine.report)) ->
          let saved = baseline.W.Engine.makespan_s -. r.W.Engine.makespan_s in
          Format.fprintf ppf
            "%s + cache-aware @@ %.0f GB vs fifo + no cache: makespan %.1fs vs %.1fs (%+.1fs, \
             %.0f%% of the baseline's partitioning time amortized away)@."
            (W.Engine.policy_name r.W.Engine.policy)
            budget_gb r.W.Engine.makespan_s baseline.W.Engine.makespan_s (-.saved)
            (100.0
            *. (baseline.W.Engine.total_partition_s -. r.W.Engine.total_partition_s)
            /. Float.max baseline.W.Engine.total_partition_s 1e-9))
        cached
  | [] -> ());
  let config_json (budget_gb, (r : W.Engine.report)) =
    Json.Obj
      [
        ("policy", Json.String (W.Engine.policy_name r.W.Engine.policy));
        ("selection", Json.String (W.Engine.selection_name r.W.Engine.selection));
        ("eviction", Json.String (W.Cache.eviction_name r.W.Engine.eviction));
        ("budget_gb", Json.Float budget_gb);
        ("slots", Json.Int r.W.Engine.slots);
        ("hit_rate", Json.Float (W.Engine.hit_rate r));
        ("hits", Json.Int r.W.Engine.cache.W.Cache.hits);
        ("misses", Json.Int r.W.Engine.cache.W.Cache.misses);
        ("evictions", Json.Int r.W.Engine.cache.W.Cache.evictions);
        ("makespan_s", Json.Float r.W.Engine.makespan_s);
        ("mean_queue_s", Json.Float (W.Engine.mean_queue_s r));
        ("total_partition_s", Json.Float r.W.Engine.total_partition_s);
        ("total_exec_s", Json.Float r.W.Engine.total_exec_s);
      ]
  in
  let path = "BENCH_workload.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("mix", Json.String mix.W.Job.name);
         ("jobs", Json.Int n_jobs);
         ("seed", Json.String (Int64.to_string seed));
         ("configs", Json.List (List.map config_json reports));
       ]);
  Format.fprintf ppf "@.wrote the machine-readable comparison to %s@." path

(* --- dynamic: incremental refresh vs full rebuild under mutations --- *)

let dynamic ppf =
  let mix =
    match W.Job.find_mix "reuse-heavy" with
    | Some m -> m
    | None -> invalid_arg "bench: reuse-heavy mix missing"
  in
  let seed = 7L and n_jobs = 30 in
  let jobs = W.Job.generate ~seed ~jobs:n_jobs mix in
  Format.fprintf ppf
    "%d jobs from the %S mix with seeded edge-mutation batches landing@.\
     every K launches (N inserts + N/4 deletes per batch). Each cell@.\
     replays the identical stream three times: forcing the incremental@.\
     refresh path, forcing the drop-cold rebuild path, and letting the@.\
     cost model price the choice per batch.@.@."
    n_jobs mix.W.Job.name;
  let grid_every = [ 4; 8 ] in
  let grid_rate = [ 16; 64 ] in
  let cells = ref [] in
  let rows =
    List.concat_map
      (fun mutate_every ->
        List.map
          (fun rate ->
            let spec = Printf.sprintf "ins@1-16:r%d,del@1-16:r%d" rate (max 1 (rate / 4)) in
            let cfg = Cutfit.Mutation.config spec in
            let run mode =
              W.Engine.run ~mutations:cfg ~mutate_every ~mutation_mode:mode ~seed jobs
            in
            let refresh = run W.Engine.Force_refresh in
            let rebuild = run W.Engine.Force_rebuild in
            let priced = run W.Engine.Priced in
            let mk (r : W.Engine.report) =
              Json.Obj
                [
                  ("mode", Json.String (W.Engine.mutation_mode_name r.W.Engine.mutation_mode));
                  ("makespan_s", Json.Float r.W.Engine.makespan_s);
                  ("hit_rate", Json.Float (W.Engine.hit_rate r));
                  ("total_partition_s", Json.Float r.W.Engine.total_partition_s);
                  ("batches", Json.Int (List.length r.W.Engine.mutations));
                  ( "refresh_batches",
                    Json.Int
                      (List.length
                         (List.filter
                            (fun (m : W.Engine.mutation_record) ->
                              String.equal m.W.Engine.mut_choice "refresh")
                            r.W.Engine.mutations)) );
                ]
            in
            cells :=
              Json.Obj
                [
                  ("mutate_every", Json.Int mutate_every);
                  ("rate", Json.Int rate);
                  ("spec", Json.String spec);
                  ("modes", Json.List [ mk refresh; mk rebuild; mk priced ]);
                ]
              :: !cells;
            [
              string_of_int mutate_every;
              Printf.sprintf "+%d/-%d" rate (max 1 (rate / 4));
              string_of_int (List.length refresh.W.Engine.mutations);
              Printf.sprintf "%.1f" refresh.W.Engine.makespan_s;
              Printf.sprintf "%.1f" rebuild.W.Engine.makespan_s;
              Printf.sprintf "%.1f" priced.W.Engine.makespan_s;
              Printf.sprintf "%.0f%%" (100.0 *. W.Engine.hit_rate refresh);
              Printf.sprintf "%.0f%%" (100.0 *. W.Engine.hit_rate rebuild);
              (if refresh.W.Engine.makespan_s < rebuild.W.Engine.makespan_s then "refresh"
               else if rebuild.W.Engine.makespan_s < refresh.W.Engine.makespan_s then "rebuild"
               else "tie");
            ])
          grid_rate)
      grid_every
  in
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:
         [
           "Every"; "Batch"; "Batches"; "Refresh s"; "Rebuild s"; "Priced s"; "Hit(refr)";
           "Hit(rebd)"; "Winner";
         ]
       ~rows);
  let path = "BENCH_dynamic.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("mix", Json.String mix.W.Job.name);
         ("jobs", Json.Int n_jobs);
         ("seed", Json.String (Int64.to_string seed));
         ("cells", Json.List (List.rev !cells));
       ]);
  Format.fprintf ppf "@.wrote the incremental-vs-rebuild grid to %s@." path

(* --- faults: checkpoint cadence x fault rate, recovery overhead --- *)

let faults ppf =
  let spec = Cutfit.Datasets.find "pocek" in
  let g = Cutfit.Datasets.generate spec in
  let scale = Run.scale_of spec g in
  Format.fprintf ppf
    "PageRank on the Pocek analogue (advised partitioner, config (i))@.\
     under seeded fault schedules: checkpoint cadence x fault rate, both@.\
     recovery modes. Every faulty run is checked bit-identical to the@.\
     fault-free baseline (the recovery-equivalence invariant); the table@.\
     prices what that tolerance costs in simulated time:@.@.";
  let run ?faults ?checkpoint_every () =
    let p =
      Cutfit.Pipeline.prepare ~scale ?faults ?checkpoint_every
        ~algorithm:Cutfit.Advisor.Pagerank g
    in
    Cutfit.Pipeline.pagerank p
  in
  let base_ranks, base_trace = run () in
  let base_digest = Cutfit.Check.Fault_check.float_attrs_digest base_ranks in
  let rates = [ 0.0; 0.1; 0.5 ] in
  let cadences = [ None; Some 2; Some 5 ] in
  let cells =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun rate ->
            List.map
              (fun cadence ->
                (* a pinned crash so both recovery modes are actually
                   exercised, plus the rate-controlled random layer *)
                let faults =
                  if rate = 0.0 then None
                  else
                    Some (Cutfit.Faults.config ~mode (Printf.sprintf "crash@3,rand@%g" rate))
                in
                let ranks, trace = run ?faults ?checkpoint_every:cadence () in
                let digest = Cutfit.Check.Fault_check.float_attrs_digest ranks in
                if Cutfit.Trace.completed trace && digest <> base_digest then
                  invalid_arg "bench faults: faulty run diverged from the baseline";
                (mode, rate, cadence, trace))
              cadences)
          rates)
      [ Cutfit.Faults.Rollback; Cutfit.Faults.Lineage ]
  in
  let cadence_name = function None -> "none" | Some k -> Printf.sprintf "every %d" k in
  let rows =
    List.map
      (fun (mode, rate, cadence, (t : Cutfit.Trace.t)) ->
        [
          Cutfit.Faults.mode_name mode;
          Printf.sprintf "%.0f%%" (100.0 *. rate);
          cadence_name cadence;
          string_of_int t.Cutfit.Trace.faults_injected;
          string_of_int (Cutfit.Trace.num_recoveries t);
          E.Report.seconds t.Cutfit.Trace.checkpoint_s;
          E.Report.seconds t.Cutfit.Trace.recovery_s;
          E.Report.seconds t.Cutfit.Trace.total_s;
          Printf.sprintf "%+.0f%%"
            (100.0
            *. (t.Cutfit.Trace.total_s -. base_trace.Cutfit.Trace.total_s)
            /. base_trace.Cutfit.Trace.total_s);
          Cutfit.Trace.outcome_name t.Cutfit.Trace.outcome;
        ])
      cells
  in
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:
         [
           "Mode"; "Rate"; "Checkpoint"; "Faults"; "Recoveries"; "Ckpt s"; "Recovery s";
           "Total s"; "Overhead"; "Outcome";
         ]
       ~rows);
  let cell_json (mode, rate, cadence, (t : Cutfit.Trace.t)) =
    Json.Obj
      [
        ("mode", Json.String (Cutfit.Faults.mode_name mode));
        ("fault_rate", Json.Float rate);
        ( "checkpoint_every",
          match cadence with None -> Json.Null | Some k -> Json.Int k );
        ("faults_injected", Json.Int t.Cutfit.Trace.faults_injected);
        ("recoveries", Json.Int (Cutfit.Trace.num_recoveries t));
        ("checkpoints", Json.Int t.Cutfit.Trace.checkpoints);
        ("checkpoint_s", Json.Float t.Cutfit.Trace.checkpoint_s);
        ("recovery_s", Json.Float t.Cutfit.Trace.recovery_s);
        ("total_s", Json.Float t.Cutfit.Trace.total_s);
        ("outcome", Json.String (Cutfit.Trace.outcome_name t.Cutfit.Trace.outcome));
        ("value_digest_matches_baseline", Json.Bool (Cutfit.Trace.completed t));
      ]
  in
  let path = "BENCH_faults.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("dataset", Json.String spec.Cutfit.Datasets.name);
         ("algorithm", Json.String "PR");
         ("baseline_total_s", Json.Float base_trace.Cutfit.Trace.total_s);
         ("baseline_value_digest", Json.String base_digest);
         ("cells", Json.List (List.map cell_json cells));
       ]);
  Format.fprintf ppf "@.wrote the machine-readable grid to %s@." path

(* --- resilience: speculation on/off x straggler intensity x queue bound --- *)

let resilience ppf =
  let seed = 7L and n_jobs = 20 in
  let mix =
    match W.Job.find_mix "uniform" with Some m -> m | None -> invalid_arg "uniform mix"
  in
  let jobs = W.Job.generate ~seed ~jobs:n_jobs mix in
  Format.fprintf ppf
    "Tail latency under stragglers: the same %d-job uniform stream (SJF,@.\
     cache-aware selection) replayed under straggler intensities, with and@.\
     without speculative re-execution, bounded and unbounded admission@.\
     queues. Speculation re-runs a straggling executor's superstep tasks@.\
     on the least-loaded executor at a priced cost (launch RPC, re-shuffle,@.\
     clone compute) — values stay bit-identical, only the tail moves:@.@."
    n_jobs;
  let cells =
    List.concat_map
      (fun factor ->
        List.concat_map
          (fun queue_bound ->
            List.map
              (fun speculate ->
                let faults =
                  Cutfit.Faults.config (Printf.sprintf "straggler@2:x%d" factor)
                in
                let speculation =
                  if speculate then Some (Cutfit.Speculation.config ()) else None
                in
                let r =
                  W.Engine.run ~faults ?speculation ?queue_bound ~policy:W.Engine.Sjf ~seed
                    jobs
                in
                (factor, queue_bound, speculate, r))
              [ false; true ])
          [ None; Some 4 ])
      [ 4; 8; 16 ]
  in
  let shed_rate (r : W.Engine.report) =
    float_of_int (W.Engine.shed_jobs r) /. float_of_int n_jobs
  in
  let ptiles (r : W.Engine.report) =
    match W.Engine.latency_percentiles r with
    | Some p -> p
    | None -> invalid_arg "bench resilience: a cell finished no jobs"
  in
  let bound_name = function None -> "unbounded" | Some b -> string_of_int b in
  let rows =
    List.map
      (fun (factor, queue_bound, speculate, (r : W.Engine.report)) ->
        let p = ptiles r in
        [
          Printf.sprintf "x%d" factor;
          bound_name queue_bound;
          (if speculate then "on" else "off");
          string_of_int (W.Engine.shed_jobs r);
          Printf.sprintf "%.0f%%" (100.0 *. shed_rate r);
          string_of_int (W.Engine.total_speculations r);
          Printf.sprintf "%.1f" p.Cutfit_stats.Summary.p50;
          Printf.sprintf "%.1f" p.Cutfit_stats.Summary.p95;
          Printf.sprintf "%.1f" p.Cutfit_stats.Summary.p99;
          Printf.sprintf "%.1f" r.W.Engine.makespan_s;
        ])
      cells
  in
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:
         [
           "Straggler"; "Queue"; "Speculate"; "Shed"; "Shed rate"; "Clones"; "p50"; "p95";
           "p99"; "Makespan s";
         ]
       ~rows);
  (* Headline: the paired p99 deltas, speculation on vs off. *)
  List.iter
    (fun factor ->
      let pick speculate =
        List.find_map
          (fun (f, b, s, r) ->
            if f = factor && b = None && s = speculate then Some (ptiles r) else None)
          cells
      in
      match (pick false, pick true) with
      | Some off, Some on_ ->
          Format.fprintf ppf
            "straggler x%-2d (unbounded): p99 %.1fs -> %.1fs with speculation (%+.0f%%)@."
            factor off.Cutfit_stats.Summary.p99 on_.Cutfit_stats.Summary.p99
            (100.0
            *. (on_.Cutfit_stats.Summary.p99 -. off.Cutfit_stats.Summary.p99)
            /. off.Cutfit_stats.Summary.p99)
      | _ -> ())
    [ 4; 8; 16 ];
  let cell_json (factor, queue_bound, speculate, (r : W.Engine.report)) =
    let p = ptiles r in
    Json.Obj
      [
        ("straggler_factor", Json.Int factor);
        ( "queue_bound",
          match queue_bound with None -> Json.Null | Some b -> Json.Int b );
        ("speculate", Json.Bool speculate);
        ("shed_jobs", Json.Int (W.Engine.shed_jobs r));
        ("shed_rate", Json.Float (shed_rate r));
        ("speculations", Json.Int (W.Engine.total_speculations r));
        ("latency_p50_s", Json.Float p.Cutfit_stats.Summary.p50);
        ("latency_p95_s", Json.Float p.Cutfit_stats.Summary.p95);
        ("latency_p99_s", Json.Float p.Cutfit_stats.Summary.p99);
        ("makespan_s", Json.Float r.W.Engine.makespan_s);
        ("retries", Json.Int r.W.Engine.retries);
      ]
  in
  let path = "BENCH_resilience.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("mix", Json.String mix.W.Job.name);
         ("jobs", Json.Int n_jobs);
         ("policy", Json.String "sjf");
         ("seed", Json.String (Int64.to_string seed));
         ("speculate_threshold", Json.Float 2.0);
         ("cells", Json.List (List.map cell_json cells));
       ]);
  Format.fprintf ppf "@.wrote the machine-readable grid to %s@." path

(* --- elastic: per-tenant p99 isolation under a noisy-neighbour storm --- *)

let elastic ppf =
  let seed = 7L in
  (* A steady "victim" tenant — one PR job every 6 s — shares the
     cluster with a "storm" tenant that floods 30 jobs in a six-second
     burst starting at t = 12.1 s. The storm-free run anchors the
     victim's native latency profile; the two storm runs differ only in
     whether weighted fair sharing is on. *)
  let victim_jobs = 14 and storm_jobs = 60 and slots = 4 in
  let jobs ~storm =
    let protos =
      List.init victim_jobs (fun i ->
          ("victim", 8.0 *. float_of_int i, Cutfit.Advisor.Triangle_count, "pocek", 128))
      @
      if storm then
        List.init storm_jobs (fun i ->
            ("storm", 0.1 +. (0.2 *. float_of_int i), Cutfit.Advisor.Pagerank, "youtube", 128))
      else []
    in
    let sorted =
      List.stable_sort (fun (_, a, _, _, _) (_, b, _, _, _) -> Float.compare a b) protos
    in
    List.mapi
      (fun id (tenant, arrival_s, algorithm, dataset, num_partitions) ->
        { W.Job.id; arrival_s; tenant; algorithm; dataset; num_partitions })
      sorted
  in
  let run ~storm ~fairness ?scale_events () =
    W.Engine.run ~slots ~fairness
      ~tenant_weights:[ ("victim", 3.0); ("storm", 1.0) ]
      ?scale_events ~seed (jobs ~storm)
  in
  let churn = Cutfit.Elastic.config ~seed:7 "leave@30-1,join@60+1" in
  let cells =
    [
      ("storm-free", run ~storm:false ~fairness:false ());
      ("storm, fairness off", run ~storm:true ~fairness:false ());
      ("storm, fairness on", run ~storm:true ~fairness:true ());
      ("storm + churn, fairness on", run ~storm:true ~fairness:true ~scale_events:churn ());
    ]
  in
  let tenant_ptiles (r : W.Engine.report) tenant =
    let lat =
      List.filter_map
        (fun (j : W.Engine.job_record) ->
          if String.equal j.W.Engine.job.W.Job.tenant tenant && j.W.Engine.outcome <> "shed"
          then Some (j.W.Engine.finish_s -. j.W.Engine.job.W.Job.arrival_s)
          else None)
        r.W.Engine.records
    in
    if lat = [] then None else Some (Cutfit_stats.Summary.percentiles (Array.of_list lat))
  in
  Format.fprintf ppf
    "Per-tenant SLO isolation: a steady victim tenant (1 PR job / 6 s)@.\
     against a 30-job noisy-neighbour burst, with and without weighted@.\
     fair sharing, plus membership churn on top. Fair sharing gives each@.\
     freed slot to the tenant with the smallest busy/weight deficit, so@.\
     the storm queues behind its own backlog instead of the victim's:@.@.";
  let fsig = Printf.sprintf "%.1f" in
  let rows =
    List.map
      (fun (name, (r : W.Engine.report)) ->
        let v = tenant_ptiles r "victim" in
        let s = tenant_ptiles r "storm" in
        let p f = function Some x -> fsig (f x) | None -> "-" in
        [
          name;
          (if r.W.Engine.fairness then "on" else "off");
          string_of_int (r.W.Engine.joins + r.W.Engine.leaves);
          p (fun x -> x.Cutfit_stats.Summary.p50) v;
          p (fun x -> x.Cutfit_stats.Summary.p95) v;
          p (fun x -> x.Cutfit_stats.Summary.p99) v;
          p (fun x -> x.Cutfit_stats.Summary.p99) s;
          fsig r.W.Engine.makespan_s;
        ])
      cells
  in
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:
         [
           "Scenario"; "Fairness"; "Scale evts"; "Victim p50"; "Victim p95"; "Victim p99";
           "Storm p99"; "Makespan s";
         ]
       ~rows);
  (* Headline: the victim's p99 degradation vs the storm-free anchor. *)
  let victim_p99 name =
    match tenant_ptiles (List.assoc name cells) "victim" with
    | Some p -> p.Cutfit_stats.Summary.p99
    | None -> invalid_arg "bench elastic: victim finished no jobs"
  in
  let free = victim_p99 "storm-free" in
  let degradation name = 100.0 *. (victim_p99 name -. free) /. free in
  Format.fprintf ppf
    "victim p99: %.1fs storm-free | %.1fs under storm without fairness (%+.0f%%) | %.1fs with \
     fairness (%+.0f%%)@."
    free
    (victim_p99 "storm, fairness off")
    (degradation "storm, fairness off")
    (victim_p99 "storm, fairness on")
    (degradation "storm, fairness on");
  let cell_json (name, (r : W.Engine.report)) =
    let ptile_json = function
      | None -> Json.Null
      | Some p ->
          Json.Obj
            [
              ("p50_s", Json.Float p.Cutfit_stats.Summary.p50);
              ("p95_s", Json.Float p.Cutfit_stats.Summary.p95);
              ("p99_s", Json.Float p.Cutfit_stats.Summary.p99);
            ]
    in
    Json.Obj
      [
        ("scenario", Json.String name);
        ("fairness", Json.Bool r.W.Engine.fairness);
        ("scale_spec", match r.W.Engine.scale_spec with None -> Json.Null | Some s -> Json.String s);
        ("joins", Json.Int r.W.Engine.joins);
        ("leaves", Json.Int r.W.Engine.leaves);
        ("preemptions", Json.Int r.W.Engine.preemptions);
        ("victim_latency", ptile_json (tenant_ptiles r "victim"));
        ("storm_latency", ptile_json (tenant_ptiles r "storm"));
        ("makespan_s", Json.Float r.W.Engine.makespan_s);
        ("fairness_violations", Json.Int r.W.Engine.fairness_violations);
        ("stale_placement_hits", Json.Int r.W.Engine.stale_placement_hits);
      ]
  in
  let path = "BENCH_elastic.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("victim_jobs", Json.Int victim_jobs);
         ("storm_jobs", Json.Int storm_jobs);
         ("slots", Json.Int slots);
         ("seed", Json.String (Int64.to_string seed));
         ("victim_p99_storm_free_s", Json.Float free);
         ( "victim_p99_degradation_fairness_off_pct",
           Json.Float (degradation "storm, fairness off") );
         ( "victim_p99_degradation_fairness_on_pct",
           Json.Float (degradation "storm, fairness on") );
         ("cells", Json.List (List.map cell_json cells));
       ]);
  Format.fprintf ppf "@.wrote the machine-readable grid to %s@." path

(* --- telemetry: per-superstep observability + JSONL export --- *)

let telemetry ppf =
  Format.fprintf ppf
    "PageRank on the Pocek analogue (advised partitioner, config (i)),@.\
     with the lib/obs telemetry layer attached: a ring buffer for the@.\
     reconciliation table below and a JSONL export (trace.jsonl) from@.\
     which every per-superstep figure can be re-derived offline:@.@.";
  let spec = Cutfit.Datasets.find "pocek" in
  let g = Cutfit.Datasets.generate spec in
  let scale = Run.scale_of spec g in
  let ring, contents = Cutfit.Sink.ring () in
  let t = Cutfit.Telemetry.create ~sinks:[ ring; Cutfit.Sink.jsonl "trace.jsonl" ] () in
  let p = Cutfit.Pipeline.prepare ~scale ~telemetry:t ~algorithm:Cutfit.Advisor.Pagerank g in
  let _ranks, trace = Cutfit.Pipeline.pagerank p in
  Cutfit.Telemetry.close t;
  let events = contents () in
  let supersteps =
    List.filter_map (function Cutfit.Event.Superstep s -> Some s | _ -> None) events
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 supersteps in
  let sumf f = List.fold_left (fun acc s -> acc +. f s) 0.0 supersteps in
  let rows =
    [
      [
        "records";
        string_of_int (List.length supersteps);
        string_of_int (Cutfit.Trace.num_supersteps trace);
      ];
      [
        "messages";
        E.Report.commas (sum (fun s -> s.Cutfit.Event.messages));
        E.Report.commas (Cutfit.Trace.total_messages trace);
      ];
      [
        "remote msgs";
        E.Report.commas
          (sum (fun s -> s.Cutfit.Event.remote_shuffles + s.Cutfit.Event.remote_broadcasts));
        E.Report.commas (Cutfit.Trace.total_remote_messages trace);
      ];
      [
        "wire bytes";
        Printf.sprintf "%.0f" (sumf (fun s -> s.Cutfit.Event.wire_bytes));
        Printf.sprintf "%.0f" (Cutfit.Trace.total_wire_bytes trace);
      ];
    ]
  in
  Format.fprintf ppf "%s@."
    (E.Report.table ~header:[ "Quantity"; "Event stream"; "Trace.t" ] ~rows);
  Format.fprintf ppf "straggler spread (max/min jittered task time) per superstep:@.";
  List.iter
    (fun (s : Cutfit.Event.superstep) ->
      if s.Cutfit.Event.step >= 0 then
        Format.fprintf ppf "  step %2d: skew %.2f, barrier waits %s@." s.Cutfit.Event.step
          (Cutfit.Event.skew s)
          (String.concat " "
             (List.map (Printf.sprintf "%.3fs") (Array.to_list s.Cutfit.Event.barrier_wait_s))))
    supersteps;
  Format.fprintf ppf "registry: @.";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-24s %.3f@." name v)
    (Cutfit.Metric.snapshot (Cutfit.Telemetry.metrics t));
  Format.fprintf ppf "wrote %d events to trace.jsonl@." (Cutfit.Telemetry.events_emitted t)

(* --- bechamel micro-benchmarks --- *)

let micro ppf =
  let open Bechamel in
  let spec = Cutfit.Datasets.find "youtube" in
  let g = Cutfit.Datasets.generate spec in
  let assign_test s =
    Test.make ~name:(Cutfit.Strategy.to_string s) (Staged.stage (fun () ->
        ignore (Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash s) ~num_partitions:128 g)))
  in
  let metrics_test =
    let a = Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash Cutfit.Strategy.Rvc) ~num_partitions:128 g in
    Test.make ~name:"metrics" (Staged.stage (fun () ->
        ignore (Cutfit.Metrics.compute g ~num_partitions:128 a)))
  in
  let pgraph_test =
    let a = Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash Cutfit.Strategy.Rvc) ~num_partitions:128 g in
    Test.make ~name:"pgraph-build" (Staged.stage (fun () ->
        ignore (Cutfit.Pgraph.build g ~num_partitions:128 a)))
  in
  let grouped =
    Test.make_grouped ~name:"youtube-analogue (37k edges)"
      (List.map assign_test Cutfit.Strategy.all @ [ metrics_test; pgraph_test ])
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark grouped in
  Format.fprintf ppf "per-call wall time (OLS on monotonic clock):@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Format.fprintf ppf "  %-40s %12.0f ns/run@." name est
      | _ -> Format.fprintf ppf "  %-40s (no estimate)@." name)
    results

(* --- speed: compact CSR kernels, measured edges/sec ------------------ *)

(* Uniform random digraph, seeded; self-loops skipped, duplicates kept
   (they only add work, which is the point here). *)
let speed_graph ~seed ~m =
  let n = m / 8 in
  let rng = Cutfit.Xoshiro.create seed in
  let el = Cutfit.Edge_list.create ~capacity:m () in
  let added = ref 0 in
  while !added < m do
    let s = Cutfit.Xoshiro.next_int rng n in
    let d = Cutfit.Xoshiro.next_int rng n in
    if s <> d then begin
      Cutfit.Edge_list.add el ~src:s ~dst:d;
      incr added
    end
  done;
  Cutfit.Graph.of_edge_list ~n el

let speed ppf =
  let num_partitions = 128 in
  let domains = 1 in
  Format.fprintf ppf
    "Compact CSR kernels on synthetic uniform graphs (n = edges/8, %d@.partitions, %d \
     domain(s)): measured wall time and edge-scan throughput,@.10 supersteps for PR/CC, SSSP \
     to convergence, one intersection pass@.for TR. The boxed row executes the identical \
     PageRank superstep@.recurrence on the simulated engine — same values bit-for-bit, priced@.\
     per boxed message instead of per flat array slot:@.@."
    num_partitions domains;
  let sizes = [ 1_000_000; 10_000_000; 50_000_000 ] in
  let tr_cap = 10_000_000 in
  let rows = ref [] and cells = ref [] in
  let record ~algo ~m ~n ~rounds ~wall =
    let scans = m * rounds in
    let rate = float_of_int scans /. Float.max wall 1e-9 in
    rows :=
      [
        algo; E.Report.commas m; E.Report.commas n; string_of_int rounds;
        Printf.sprintf "%.3f" wall; E.Report.commas (int_of_float rate);
      ]
      :: !rows;
    cells :=
      Json.Obj
        [
          ("algorithm", Json.String algo);
          ("edges", Json.Int m);
          ("vertices", Json.Int n);
          ("supersteps", Json.Int rounds);
          ("wall_s", Json.Float wall);
          ("edge_scans_per_s", Json.Float rate);
        ]
      :: !cells
  in
  let boxed_comparison = ref Json.Null in
  List.iter
    (fun m ->
      let g = speed_graph ~seed:99L ~m in
      let n = Cutfit.Graph.num_vertices g in
      let a =
        Cutfit.Partitioner.assign (Cutfit.Partitioner.Hash Cutfit.Strategy.Rvc) ~num_partitions g
      in
      let pg = Cutfit.Pgraph.build g ~num_partitions a in
      let c = Cutfit.Csr.build pg in
      let time f =
        let t0 = Cutfit.Clock.wall () in
        let rounds = f () in
        (rounds, Cutfit.Clock.wall () -. t0)
      in
      let rounds = ref 0 in
      let pr_rounds, pr_wall =
        time (fun () ->
            ignore (Cutfit.Pagerank.run_csr ~iterations:10 ~domains ~rounds c);
            !rounds)
      in
      record ~algo:"PR" ~m ~n ~rounds:pr_rounds ~wall:pr_wall;
      (* The acceptance comparison: the boxed simulator runs the same 10
         PageRank supersteps on the same partitioned graph at the
         smallest size; wall time is all boxed-representation overhead
         (closures, option allocs, per-message cost accounting). *)
      if m = List.hd sizes then begin
        let t0 = Cutfit.Clock.wall () in
        ignore (Cutfit.Pagerank.run ~iterations:10 ~cluster:Cutfit.Cluster.config_i pg);
        let boxed_wall = Cutfit.Clock.wall () -. t0 in
        let speedup = boxed_wall /. Float.max pr_wall 1e-9 in
        record ~algo:"PR (boxed)" ~m ~n ~rounds:pr_rounds ~wall:boxed_wall;
        boxed_comparison :=
          Json.Obj
            [
              ("algorithm", Json.String "PR");
              ("edges", Json.Int m);
              ("supersteps", Json.Int pr_rounds);
              ("boxed_wall_s", Json.Float boxed_wall);
              ("csr_wall_s", Json.Float pr_wall);
              ("speedup", Json.Float speedup);
            ];
        Format.fprintf ppf "boxed vs csr on %s-edge PageRank: %.2fs vs %.3fs — %.1fx@.@."
          (E.Report.commas m) boxed_wall pr_wall speedup
      end;
      let cc_rounds, cc_wall =
        time (fun () ->
            ignore (Cutfit.Connected_components.run_csr ~iterations:10 ~domains ~rounds c);
            !rounds)
      in
      record ~algo:"CC" ~m ~n ~rounds:cc_rounds ~wall:cc_wall;
      let landmarks = Cutfit.Sssp.pick_landmarks ~seed:11L ~count:3 g in
      let sssp_rounds, sssp_wall =
        time (fun () ->
            ignore (Cutfit.Sssp.run_csr ~domains ~rounds ~landmarks c);
            !rounds)
      in
      record ~algo:"SSSP" ~m ~n ~rounds:sssp_rounds ~wall:sssp_wall;
      if m <= tr_cap then begin
        let tr_rounds, tr_wall = time (fun () -> ignore (Cutfit.Triangle_count.run_csr ~domains c); 1) in
        record ~algo:"TR" ~m ~n ~rounds:tr_rounds ~wall:tr_wall
      end)
    sizes;
  Format.fprintf ppf "%s@."
    (E.Report.table
       ~header:[ "Algo"; "Edges"; "Vertices"; "Supersteps"; "Wall s"; "Edge scans/s" ]
       ~rows:(List.rev !rows));
  let path = "BENCH_speed.json" in
  E.Export.write_json path
    (Json.Obj
       [
         ("partitions", Json.Int num_partitions);
         ("domains", Json.Int domains);
         ("seed", Json.String "99");
         ("boxed_comparison", !boxed_comparison);
         ("kernels", Json.List (List.rev !cells));
       ]);
  Format.fprintf ppf "@.wrote the machine-readable throughput grid to %s@." path

let sections =
  [
    ("table1", ("Table 1: dataset characterization (analogues; original sizes alongside)", table1));
    ("figure1", ("Figure 1: in/out-degree distributions (log2 bins)", figure1));
    ("figure2", ("Figure 2: CDF of out-degree / in-degree ratio", figure2));
    ("table2", ("Table 2: partitioning metrics, 128 partitions", table2));
    ("table3", ("Table 3: partitioning metrics, 256 partitions", table3));
    ("figure3", ("Figure 3: PageRank time vs CommCost", figure_for Run.Pagerank "CommCost"));
    ("figure4", ("Figure 4: Connected Components time vs CommCost", figure_for Run.Connected_components "CommCost"));
    ("figure5", ("Figure 5: Triangle Count time vs Cut", figure_for Run.Triangle_count "Cut"));
    ("figure6", ("Figure 6: SSSP time vs CommCost", figure_for Run.Shortest_paths "CommCost"));
    ("checks", ("Shape checks: paper claims vs this reproduction", checks));
    ("infra", ("Infrastructure experiment: PR on follow-dec, configs (ii)/(iii)/(iv)", infra));
    ("ablation", ("Ablation A1: streaming partitioners", ablation_streaming));
    ("advisor", ("Ablation A2: advisor regret", ablation_advisor));
    ("costmodel", ("Ablation A3: TR per-cut-vertex reduction term", ablation_costmodel));
    ("sweep", ("Granularity sweep: 32..512 partitions", sweep));
    ("engines", ("Engine comparison: Pregel vs GAS", engines));
    ("workload", ("Workload engine: scheduling policies x cache budgets", workload));
    ("dynamic", ("Dynamic graphs: incremental refresh vs full rebuild", dynamic));
    ("faults", ("Fault tolerance: checkpoint cadence x fault rate", faults));
    ("resilience", ("Resilience: speculation x straggler intensity x queue bound", resilience));
    ("elastic", ("Elasticity: per-tenant p99 isolation under a noisy-neighbour storm", elastic));
    ("speed", ("Speed: compact CSR kernels, measured edges/sec", speed));
    ("export", ("CSV + JSON export of the evaluation matrix", export));
    ("telemetry", ("Telemetry: per-superstep observability + JSONL export", telemetry));
    ("micro", ("Micro-benchmarks (bechamel)", micro));
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: ([ _ ] as args) when List.mem (List.hd args) [ "all" ] -> List.map fst sections
    | _ :: [] -> List.map fst sections
    | _ :: args -> args
    | [] -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some (title, f) -> section title f
      | None ->
          Format.eprintf "unknown section %S; available: %s@." name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
