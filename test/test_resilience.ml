(* Overload protection and straggler mitigation: speculative superstep
   re-execution (value equivalence, tail-latency effect, determinism),
   admission-control shedding, SLO deadlines, and the circuit breaker's
   open/probe/close lifecycle — all through the real engines, checked
   by the workload sanitizer's conservation laws. *)

module Advisor = Cutfit.Advisor
module Pipeline = Cutfit.Pipeline
module Sanitize = Cutfit.Sanitize
module Check = Cutfit.Check
module Faults = Cutfit_bsp.Faults
module Speculation = Cutfit_bsp.Speculation
module Trace = Cutfit_bsp.Trace
module Summary = Cutfit_stats.Summary
module Job = Cutfit_workload.Job
module Cache = Cutfit_workload.Cache
module Engine = Cutfit_workload.Engine
module Workload_check = Cutfit_workload.Workload_check

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_clean what vs = Alcotest.(check int) (what ^ " is clean") 0 (List.length vs)

let mix = List.hd Job.mixes
let stragglers = Faults.config "straggler@2:x8"
let speculation = Speculation.config ()

(* --- percentiles (satellite: Stats.percentiles) --- *)

let test_percentiles_nearest_rank () =
  (* 1..100 in scrambled order: nearest-rank pX is exactly X. *)
  let a = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  let p = Summary.percentiles a in
  checkb "p50" true (Float.equal p.Summary.p50 50.0);
  checkb "p95" true (Float.equal p.Summary.p95 95.0);
  checkb "p99" true (Float.equal p.Summary.p99 99.0);
  let one = Summary.percentiles [| 3.25 |] in
  checkb "singleton" true
    (Float.equal one.Summary.p50 3.25
    && Float.equal one.Summary.p95 3.25
    && Float.equal one.Summary.p99 3.25);
  (* Nearest rank never interpolates: every answer is a sample. *)
  let b = [| 10.0; 20.0 |] in
  let pb = Summary.percentiles b in
  checkb "p50 of two samples is the first" true (Float.equal pb.Summary.p50 10.0);
  checkb "p99 of two samples is the second" true (Float.equal pb.Summary.p99 20.0);
  match Summary.percentiles [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty array must raise"

(* --- speculation: value equivalence --- *)

let test_speculation_preserves_values () =
  let g = Cutfit.Datasets.generate (Cutfit.Datasets.find "pocek") in
  let run ?speculation () =
    let p = Pipeline.prepare ~faults:stragglers ?speculation ~algorithm:Advisor.Pagerank g in
    Pipeline.pagerank p
  in
  let ranks_plain, trace_plain = run () in
  let ranks_spec, trace_spec = run ~speculation () in
  checkb "speculation fired" true (trace_spec.Trace.speculations <> []);
  checkb "no clones without a config" true (trace_plain.Trace.speculations = []);
  checkb "ranks bit-identical" true
    (Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       ranks_plain ranks_spec);
  (* Per-superstep counters and wire bytes are untouched; only the time
     accounting moves. *)
  List.iter2
    (fun (a : Trace.superstep) (b : Trace.superstep) ->
      checki "messages" a.Trace.messages b.Trace.messages;
      checkb "wire bytes" true (Float.equal a.Trace.wire_bytes b.Trace.wire_bytes))
    trace_plain.Trace.supersteps trace_spec.Trace.supersteps

let test_speculation_sanitizer_green () =
  let g = Cutfit.Datasets.generate (Cutfit.Datasets.find "pocek") in
  let report =
    Sanitize.check_run ~faults:stragglers ~speculation ~algorithm:Advisor.Pagerank g
  in
  checkb "sanitizer (incl. equivalence suite) passes under speculation" true
    (Sanitize.ok report)

(* --- speculation: tail latency and determinism --- *)

let straggler_workload ?speculation () =
  Engine.run ?speculation ~faults:stragglers ~policy:Engine.Sjf ~seed:7L
    (Job.generate ~seed:7L ~jobs:20 mix)

let test_speculation_lowers_tail () =
  let off = straggler_workload () in
  let on_ = straggler_workload ~speculation () in
  checkb "clones launched" true (Engine.total_speculations on_ > 0);
  match (Engine.latency_percentiles off, Engine.latency_percentiles on_) with
  | Some off_p, Some on_p ->
      checkb
        (Printf.sprintf "speculation lowers p99 (%.2f < %.2f)" on_p.Summary.p99
           off_p.Summary.p99)
        true
        (on_p.Summary.p99 < off_p.Summary.p99);
      checkb "and p95 does not regress" true (on_p.Summary.p95 <= off_p.Summary.p95)
  | _ -> Alcotest.fail "both runs must finish jobs"

let test_speculation_digest_stable () =
  check_clean "speculative straggler workload digest"
    (Workload_check.run_twice ~label:"sjf straggler speculate" (fun () ->
         straggler_workload ~speculation ()))

(* --- admission control --- *)

let test_shed_consumes_no_retry () =
  let run shed_policy =
    Engine.run ~queue_bound:1 ~shed_policy ~seed:3L (Job.generate ~seed:3L ~jobs:16 mix)
  in
  let r = run Engine.Reject in
  checkb "overload sheds" true (Engine.shed_jobs r > 0);
  checki "sheds never consume a retry" 0 r.Engine.retries;
  checki "sheds never invalidate the cache" 0 r.Engine.cache.Cache.invalidations;
  List.iter
    (fun (x : Engine.job_record) ->
      if String.equal x.Engine.outcome "shed" then begin
        checki "shed job launched nothing" 0 x.Engine.attempts;
        checkb "shed job is failed" true x.Engine.failed;
        checkb "shed job accrued no run time" true
          (Float.equal x.Engine.finish_s x.Engine.start_s)
      end)
    r.Engine.records;
  check_clean "shedding report" (Workload_check.report r);
  (* Drop-oldest displaces the longest-waiting queued job instead of the
     incoming one, so the shed set differs while conservation holds. *)
  let d = run Engine.Drop_oldest in
  checkb "drop-oldest sheds too" true (Engine.shed_jobs d > 0);
  let shed_ids (r : Engine.report) =
    List.filter_map
      (fun (x : Engine.job_record) ->
        if String.equal x.Engine.outcome "shed" then Some x.Engine.job.Job.id else None)
      r.Engine.records
  in
  checkb "policies shed different jobs" true (shed_ids r <> shed_ids d);
  check_clean "drop-oldest report" (Workload_check.report d)

(* --- SLO deadlines --- *)

let test_deadline_cancels_cleanly () =
  let r =
    Engine.run ~deadline:(Engine.Absolute 6.0) ~seed:5L (Job.generate ~seed:5L ~jobs:12 mix)
  in
  checkb "deadline fired" true (Engine.deadline_jobs r > 0);
  checki "cancels never consume a retry" 0 r.Engine.retries;
  checki "cancels never invalidate the cache" 0 r.Engine.cache.Cache.invalidations;
  List.iter
    (fun (x : Engine.job_record) ->
      if String.equal x.Engine.outcome "deadline" then begin
        checkb "cancelled job is failed" true x.Engine.failed;
        match x.Engine.deadline_s with
        | None -> Alcotest.fail "cancelled job must carry its deadline"
        | Some d ->
            checkb "slot freed at the deadline, wasted work truncated there" true
              (x.Engine.finish_s <= d +. 1e-9)
      end)
    r.Engine.records;
  check_clean "deadline report" (Workload_check.report r)

(* --- circuit breaker --- *)

(* A stream hammering one (dataset, strategy) key under a crash-heavy
   random schedule: consecutive aborted attempts must open the breaker
   (k = 2) and the first successful probe after the cooldown must close
   it again. The fault seed is searched deterministically — the first
   seed whose realization produces both transitions — so the assertion
   replays bit-identically. *)
let breaker_report fault_seed =
  let jobs =
    List.init 4 (fun i ->
        {
          Job.id = i;
          arrival_s = float_of_int i *. 0.5;
          tenant = Job.default_tenant;
          algorithm = Advisor.Pagerank;
          dataset = "pocek";
          num_partitions = 64;
        })
  in
  let faults = Faults.config ~seed:fault_seed ~max_failures:0 "rand@0.8" in
  Engine.run ~faults ~max_retries:6 ~breaker_k:2 ~breaker_cooldown_s:1.0
    ~selection:Engine.Heuristic ~seed:11L jobs

let test_breaker_reopens_and_closes () =
  let rec search seed =
    if seed > 60 then Alcotest.fail "no fault seed tripped open + close within 60 draws"
    else begin
      let r = breaker_report seed in
      let opens = List.filter (fun (t : Engine.breaker_trip) -> t.Engine.opened) r.Engine.breaker_trips in
      let closes =
        List.filter (fun (t : Engine.breaker_trip) -> not t.Engine.opened) r.Engine.breaker_trips
      in
      if opens <> [] && closes <> [] then (seed, r, opens, closes) else search (seed + 1)
    end
  in
  let seed, r, opens, closes = search 1 in
  let o = List.hd opens in
  let c = List.hd closes in
  let index p =
    let rec go i = function
      | [] -> -1
      | t :: rest -> if p t then i else go (i + 1) rest
    in
    go 0 r.Engine.breaker_trips
  in
  checkb "open precedes close in decision order" true
    (index (fun (t : Engine.breaker_trip) -> t.Engine.opened)
    < index (fun (t : Engine.breaker_trip) -> not t.Engine.opened));
  checkb "open carries the tripping streak" true (o.Engine.trip_failures >= 2);
  checki "close carries a cleared streak" 0 c.Engine.trip_failures;
  checkb "same key opens and closes" true
    (String.equal o.Engine.trip_dataset c.Engine.trip_dataset
    && String.equal o.Engine.trip_strategy c.Engine.trip_strategy);
  check_clean "breaker report" (Workload_check.report r);
  (* Replaying the found seed is bit-identical — the search is stable. *)
  check_clean "breaker digest"
    (Workload_check.run_twice ~label:"breaker lifecycle" (fun () -> breaker_report seed))

let suite =
  [
    Alcotest.test_case "percentiles are nearest-rank" `Quick test_percentiles_nearest_rank;
    Alcotest.test_case "speculation preserves values" `Quick test_speculation_preserves_values;
    Alcotest.test_case "sanitizer green under speculation" `Quick
      test_speculation_sanitizer_green;
    Alcotest.test_case "speculation lowers the p99 tail" `Quick test_speculation_lowers_tail;
    Alcotest.test_case "speculative workload digest is stable" `Quick
      test_speculation_digest_stable;
    Alcotest.test_case "shedding consumes no retry" `Quick test_shed_consumes_no_retry;
    Alcotest.test_case "deadline cancels cleanly" `Quick test_deadline_cancels_cleanly;
    Alcotest.test_case "breaker opens then closes on a probe" `Quick
      test_breaker_reopens_and_closes;
  ]
