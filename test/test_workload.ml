(* Workload engine: job streams, the partitioning cache, the scheduler,
   and the workload sanitizer. *)

module Advisor = Cutfit.Advisor
module Strategy = Cutfit.Strategy
module Partitioner = Cutfit.Partitioner
module Pgraph = Cutfit_bsp.Pgraph
module Job = Cutfit_workload.Job
module Cache = Cutfit_workload.Cache
module Engine = Cutfit_workload.Engine
module Workload_check = Cutfit_workload.Workload_check

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Any frozen pgraph serves as a cache payload. *)
let payload =
  let g = Test_util.random_graph ~seed:7L ~n:50 ~m:200 in
  let assignment = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:4 g in
  Pgraph.build g ~num_partitions:4 assignment

let key graph strategy = { Cache.graph; strategy; num_partitions = 128 }

let insert ?(available_s = 0.0) ?(rebuild_s = 1.0) cache k ~bytes =
  Cache.insert cache ~available_s k ~pg:payload ~bytes ~rebuild_s

(* --- job streams --- *)

let mix = List.hd Job.mixes

let test_generate_deterministic () =
  let a = Job.generate ~seed:99L ~jobs:50 mix in
  let b = Job.generate ~seed:99L ~jobs:50 mix in
  checkb "same stream" true (a = b);
  let c = Job.generate ~seed:100L ~jobs:50 mix in
  checkb "different seed differs" true (a <> c)

let test_generate_shape () =
  let jobs = Job.generate ~seed:5L ~jobs:80 mix in
  checki "count" 80 (List.length jobs);
  let ok_dims =
    List.for_all
      (fun (j : Job.t) ->
        List.mem_assoc j.Job.dataset mix.Job.datasets
        && List.mem_assoc j.Job.num_partitions mix.Job.partition_counts)
      jobs
  in
  checkb "every job drawn from the mix dimensions" true ok_dims;
  let rec monotone = function
    | (a : Job.t) :: (b : Job.t) :: rest -> a.Job.arrival_s <= b.Job.arrival_s && monotone (b :: rest)
    | _ -> true
  in
  checkb "arrivals non-decreasing" true (monotone jobs);
  checkb "ids sequential" true (List.mapi (fun i _ -> i) jobs = List.map (fun (j : Job.t) -> j.Job.id) jobs)

let test_generate_validation () =
  let bad = { mix with Job.datasets = [ ("no-such-graph", 1.0) ] } in
  Alcotest.check_raises "unknown dataset"
    (Invalid_argument "Job.generate: unknown dataset \"no-such-graph\"") (fun () ->
      ignore (Job.generate ~seed:1L ~jobs:1 bad));
  Alcotest.check_raises "negative count" (Invalid_argument "Job.generate: negative job count")
    (fun () -> ignore (Job.generate ~seed:1L ~jobs:(-1) mix))

(* --- cache mechanics --- *)

let test_cache_hit_miss_evict () =
  let c = Cache.create ~budget_bytes:100.0 () in
  checkb "k1 inserted" true (insert c (key "g" "RVC") ~bytes:40.0 = `Inserted []);
  checkb "k2 inserted" true (insert c (key "g" "1D") ~bytes:40.0 = `Inserted []);
  (match insert c (key "g" "2D") ~bytes:40.0 with
  | `Inserted [ (k, b) ] ->
      Alcotest.(check string) "LRU victim is the oldest" "g/RVC/128" (Cache.key_id k);
      Alcotest.(check (float 0.0)) "evicted bytes" 40.0 b
  | _ -> Alcotest.fail "expected exactly one eviction");
  checkb "evicted key misses" true (Cache.find c ~at_s:0.0 (key "g" "RVC") = None);
  checkb "live key hits" true (Cache.find c ~at_s:0.0 (key "g" "1D") <> None);
  checkb "new key hits" true (Cache.find c ~at_s:0.0 (key "g" "2D") <> None);
  let s = Cache.stats c in
  checki "lookups" 3 s.Cache.lookups;
  checki "hits" 2 s.Cache.hits;
  checki "misses" 1 s.Cache.misses;
  checki "insertions" 3 s.Cache.insertions;
  checki "evictions" 1 s.Cache.evictions;
  checki "entries" 2 s.Cache.entries;
  Alcotest.(check (float 0.0)) "bytes in cache" 80.0 s.Cache.bytes_in_cache;
  checkb "accounting clean" true (Workload_check.cache_accounting s = [])

let test_cache_lru_recency () =
  let c = Cache.create ~budget_bytes:100.0 () in
  ignore (insert c (key "g" "RVC") ~bytes:40.0);
  ignore (insert c (key "g" "1D") ~bytes:40.0);
  ignore (Cache.find c ~at_s:0.0 (key "g" "RVC"));
  (* RVC is now fresher than 1D, so 1D is the victim. *)
  match insert c (key "g" "2D") ~bytes:40.0 with
  | `Inserted [ (k, _) ] -> Alcotest.(check string) "victim" "g/1D/128" (Cache.key_id k)
  | _ -> Alcotest.fail "expected exactly one eviction"

let test_cache_cost_aware () =
  let c = Cache.create ~eviction:Cache.Cost_aware ~budget_bytes:100.0 () in
  ignore (insert c (key "g" "RVC") ~bytes:40.0 ~rebuild_s:0.5);
  ignore (insert c (key "g" "1D") ~bytes:40.0 ~rebuild_s:5.0);
  (* RVC is the cheapest to rebuild per byte, so it goes first even
     though 1D is older by recency-free tie-break standards. *)
  match insert c (key "g" "2D") ~bytes:40.0 ~rebuild_s:1.0 with
  | `Inserted [ (k, _) ] -> Alcotest.(check string) "victim" "g/RVC/128" (Cache.key_id k)
  | _ -> Alcotest.fail "expected exactly one eviction"

let test_cache_availability () =
  let c = Cache.create ~budget_bytes:100.0 () in
  ignore (insert c ~available_s:10.0 (key "g" "RVC") ~bytes:40.0);
  checkb "invisible before its build completes" false (Cache.mem c ~at_s:5.0 (key "g" "RVC"));
  checkb "visible at completion" true (Cache.mem c ~at_s:10.0 (key "g" "RVC"));
  checkb "early lookup misses" true (Cache.find c ~at_s:5.0 (key "g" "RVC") = None);
  let s = Cache.stats c in
  checki "miss counted" 1 s.Cache.misses

let test_cache_reject_and_disabled () =
  let c = Cache.create ~budget_bytes:100.0 () in
  checkb "oversized entry rejected" true (insert c (key "g" "RVC") ~bytes:200.0 = `Rejected);
  checki "nothing evicted for it" 0 (Cache.stats c).Cache.evictions;
  checki "rejection counted" 1 (Cache.stats c).Cache.rejections;
  let off = Cache.create ~budget_bytes:0.0 () in
  checkb "disabled cache rejects everything" true (insert off (key "g" "RVC") ~bytes:1.0 = `Rejected);
  checkb "disabled cache always misses" true (Cache.find off ~at_s:0.0 (key "g" "RVC") = None)

let test_cache_reinsert_replaces () =
  let c = Cache.create ~budget_bytes:100.0 () in
  ignore (insert c (key "g" "RVC") ~bytes:40.0);
  (match insert c (key "g" "RVC") ~bytes:60.0 with
  | `Inserted [ (k, b) ] ->
      Alcotest.(check string) "old entry evicted" "g/RVC/128" (Cache.key_id k);
      Alcotest.(check (float 0.0)) "old bytes" 40.0 b
  | _ -> Alcotest.fail "expected the stale entry to be evicted");
  let s = Cache.stats c in
  checki "one live entry" 1 s.Cache.entries;
  Alcotest.(check (float 0.0)) "new size" 60.0 s.Cache.bytes_in_cache;
  checkb "accounting clean" true (Workload_check.cache_accounting s = [])

(* Same insert sequence, same eviction order — twice, from scratch. *)
let test_cache_eviction_order_deterministic () =
  let scenario () =
    let c = Cache.create ~budget_bytes:250.0 () in
    let evicted = ref [] in
    List.iteri
      (fun i name ->
        match insert c (key "g" name) ~bytes:(40.0 +. float_of_int i) ~rebuild_s:(float_of_int i) with
        | `Inserted evs -> evicted := !evicted @ List.map (fun (k, _) -> Cache.key_id k) evs
        | `Rejected -> ())
      [ "RVC"; "1D"; "2D"; "CRVC"; "SC"; "DC"; "DBH"; "Greedy" ];
    !evicted
  in
  let a = scenario () and b = scenario () in
  checkb "some evictions happened" true (List.length a > 0);
  checkb "identical order" true (a = b)

let test_cache_accounting_fabricated () =
  let consistent =
    {
      Cache.budget_bytes = 100.0;
      lookups = 5;
      hits = 2;
      misses = 3;
      insertions = 3;
      evictions = 1;
      invalidations = 0;
      rejections = 0;
      bytes_inserted = 120.0;
      bytes_evicted = 40.0;
      bytes_invalidated = 0.0;
      bytes_in_cache = 80.0;
      entries = 2;
    }
  in
  checkb "consistent record passes" true (Workload_check.cache_accounting consistent = []);
  let rules s = List.map (fun v -> v.Cutfit_check.Violation.rule) (Workload_check.cache_accounting s) in
  checkb "lookup split violation" true
    (List.mem "cache-lookup-split" (rules { consistent with Cache.hits = 1 }));
  checkb "entry conservation violation" true
    (List.mem "cache-entry-conservation" (rules { consistent with Cache.entries = 7 }));
  checkb "byte conservation violation" true
    (List.mem "cache-byte-conservation" (rules { consistent with Cache.bytes_in_cache = 10.0 }));
  checkb "over budget violation" true
    (List.mem "cache-over-budget"
       (rules { consistent with Cache.bytes_in_cache = 120.0; bytes_inserted = 160.0 }));
  checkb "negative counter violation" true
    (List.mem "cache-negative" (rules { consistent with Cache.hits = -2; lookups = 1 }))

(* --- the engine --- *)

(* A small, fast mix: two cheap analogues, modest granularity, no SSSP. *)
let engine_mix =
  {
    Job.name = "test";
    description = "engine tests";
    algorithms = [ (Advisor.Pagerank, 2.0); (Advisor.Connected_components, 1.0) ];
    datasets = [ ("roadnet_pa", 2.0); ("youtube", 1.0) ];
    partition_counts = [ (32, 1.0) ];
    mean_interarrival_s = 0.5;
  }

let stream = Job.generate ~seed:21L ~jobs:8 engine_mix

let run ?(policy = Engine.Fifo) ?(selection = Engine.Cache_aware 0.25) ?telemetry
    ?(budget_bytes = 8.0e9) () =
  Engine.run ~slots:2 ~budget_bytes ~iterations:4 ?telemetry ~policy ~selection ~seed:21L stream

let test_engine_deterministic () =
  checkb "run-twice digest" true
    (Workload_check.run_twice ~label:"engine" (fun () -> run ()) = [])

let test_engine_report_clean () =
  let sink, read = Cutfit_obs.Sink.ring ~capacity:4096 () in
  let telemetry = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
  let report = run ~telemetry () in
  Cutfit_obs.Telemetry.close telemetry;
  let violations = Workload_check.report ~events:(read ()) report in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Cutfit_check.Violation.rule) violations);
  checki "all jobs recorded" (List.length stream) (List.length report.Engine.records)

let test_engine_cache_effect () =
  let cached = run () in
  let uncached = run ~budget_bytes:0.0 () in
  checkb "reuse mix produces hits" true (Engine.hit_rate cached > 0.0);
  checkb "disabled cache never hits" true (Engine.hit_rate uncached = 0.0);
  checki "disabled cache rejects every build" uncached.Engine.cache.Cache.misses
    uncached.Engine.cache.Cache.rejections;
  let paid r = r.Engine.total_partition_s in
  checkb "cache saves partitioning time" true (paid cached < paid uncached);
  List.iter
    (fun (r : Engine.job_record) ->
      if r.Engine.cache_hit then
        Alcotest.(check (float 0.0)) "hits pay no partitioning" 0.0 r.Engine.partition_s)
    cached.Engine.records

let test_engine_policies_same_jobs () =
  let ids report =
    List.sort compare (List.map (fun (r : Engine.job_record) -> r.Engine.job.Job.id) report.Engine.records)
  in
  let fifo = run ~policy:Engine.Fifo () in
  let sjf = run ~policy:Engine.Sjf () in
  checkb "same job set under both policies" true (ids fifo = ids sjf);
  checkb "fifo starts in arrival order" true
    (let starts =
       List.sort
         (fun (a : Engine.job_record) b -> compare a.Engine.start_s b.Engine.start_s)
         fifo.Engine.records
     in
     let arrivals = List.map (fun (r : Engine.job_record) -> r.Engine.job.Job.arrival_s) starts in
     List.sort compare arrivals = arrivals)

let test_engine_selection_modes () =
  List.iter
    (fun selection ->
      let report = run ~selection () in
      checkb
        (Printf.sprintf "selection %s is clean" (Engine.selection_name selection))
        true
        (Workload_check.report report = []))
    [ Engine.Heuristic; Engine.Measured ]

let test_engine_rejects_bad_slots () =
  Alcotest.check_raises "slots >= 1" (Invalid_argument "Engine.run: slots must be >= 1") (fun () ->
      ignore (Engine.run ~slots:0 ~seed:1L []))

let test_report_lines_roundtrip () =
  let report = run () in
  let lines = Engine.report_lines report in
  checki "one line per record plus params and cache" (List.length report.Engine.records + 2)
    (List.length lines);
  List.iter
    (fun line ->
      match Cutfit_obs.Json.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparsable report line %s: %s" line e)
    lines

let suite =
  [
    Alcotest.test_case "job stream deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "job stream shape" `Quick test_generate_shape;
    Alcotest.test_case "job stream validation" `Quick test_generate_validation;
    Alcotest.test_case "cache hit/miss/evict" `Quick test_cache_hit_miss_evict;
    Alcotest.test_case "cache lru recency" `Quick test_cache_lru_recency;
    Alcotest.test_case "cache cost-aware eviction" `Quick test_cache_cost_aware;
    Alcotest.test_case "cache availability gating" `Quick test_cache_availability;
    Alcotest.test_case "cache reject / disabled" `Quick test_cache_reject_and_disabled;
    Alcotest.test_case "cache reinsert replaces" `Quick test_cache_reinsert_replaces;
    Alcotest.test_case "cache eviction order deterministic" `Quick
      test_cache_eviction_order_deterministic;
    Alcotest.test_case "cache accounting fabricated" `Quick test_cache_accounting_fabricated;
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "engine report clean" `Quick test_engine_report_clean;
    Alcotest.test_case "engine cache effect" `Quick test_engine_cache_effect;
    Alcotest.test_case "engine policies same jobs" `Quick test_engine_policies_same_jobs;
    Alcotest.test_case "engine selection modes" `Quick test_engine_selection_modes;
    Alcotest.test_case "engine rejects bad slots" `Quick test_engine_rejects_bad_slots;
    Alcotest.test_case "report lines roundtrip" `Quick test_report_lines_roundtrip;
  ]

(* --- partial invalidation (the dynamic-graph hook) --- *)

let test_cache_invalidate_partial () =
  let c = Cache.create ~budget_bytes:1000.0 () in
  ignore (insert c (key "g1" "RVC") ~bytes:10.0);
  ignore (insert c (key "g1" "1D") ~bytes:20.0);
  ignore (insert c (key "g2" "RVC") ~bytes:30.0);
  let dropped = Cache.invalidate c ~pred:(fun k -> k.Cache.graph = "g1") in
  Alcotest.(check (list string)) "drops exactly g1's keys, in insertion order"
    [ "g1/RVC/128"; "g1/1D/128" ]
    (List.map (fun (k, _) -> Cache.key_id k) dropped);
  Alcotest.(check (list (float 0.0))) "dropped bytes" [ 10.0; 20.0 ]
    (List.map snd dropped);
  checkb "g1 misses" true (Cache.find c ~at_s:0.0 (key "g1" "RVC") = None);
  checkb "g2 survives warm" true (Cache.find c ~at_s:0.0 (key "g2" "RVC") <> None);
  let s = Cache.stats c in
  checki "counted as invalidations" 2 s.Cache.invalidations;
  checki "not as evictions" 0 s.Cache.evictions;
  checki "conservation: entries = ins - ev - inv" s.Cache.entries
    (s.Cache.insertions - s.Cache.evictions - s.Cache.invalidations);
  Alcotest.(check (float 0.0)) "bytes invalidated" 30.0 s.Cache.bytes_invalidated

let test_cache_peek_entries_uncounted () =
  let c = Cache.create ~budget_bytes:1000.0 () in
  ignore (insert c (key "g1" "RVC") ~bytes:10.0);
  ignore (insert c (key "g2" "RVC") ~bytes:10.0);
  let before = Cache.stats c in
  let peeked = Cache.peek_entries c ~pred:(fun k -> k.Cache.graph = "g1") in
  checki "peek sees the matching entry" 1 (List.length peeked);
  checkb "peek returns the payload" true (List.for_all (fun (_, pg) -> pg == payload) peeked);
  let after = Cache.stats c in
  checki "no lookup counted" before.Cache.lookups after.Cache.lookups;
  checki "no hit counted" before.Cache.hits after.Cache.hits

let suite =
  suite
  @ [
      Alcotest.test_case "cache partial invalidation" `Quick test_cache_invalidate_partial;
      Alcotest.test_case "cache peek uncounted" `Quick test_cache_peek_entries_uncounted;
    ]
