let () =
  Alcotest.run "cutfit"
    [
      ("prng", Test_prng.suite);
      ("graph", Test_graph.suite);
      ("stats", Test_stats.suite);
      ("gen", Test_gen.suite);
      ("partition", Test_partition.suite);
      ("bsp", Test_bsp.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("csr", Test_csr.suite);
      ("races", Test_races.suite);
      ("algo", Test_algo.suite);
      ("core", Test_core.suite);
      ("workload", Test_workload.suite);
      ("dynamic", Test_dynamic.suite);
      ("faults", Test_faults.suite);
      ("resilience", Test_resilience.suite);
      ("elastic", Test_elastic.suite);
      ("experiments", Test_experiments.suite);
      ("edge-cases", Test_edge_cases.suite);
    ]
