module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Streaming = Cutfit_partition.Streaming
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Hashing = Cutfit_partition.Hashing

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let g = Test_util.random_graph ~seed:77L ~n:300 ~m:2000
let num_partitions = 16

let test_strategy_strings () =
  List.iter
    (fun s ->
      match Strategy.of_string (Strategy.to_string s) with
      | Some s' -> checkb "roundtrip" true (s = s')
      | None -> Alcotest.fail "of_string failed")
    Strategy.all;
  checkb "unknown rejected" true (Strategy.of_string "bogus" = None);
  checkb "case insensitive" true (Strategy.of_string "crvc" = Some Strategy.Crvc)

let test_assignments_in_range () =
  List.iter
    (fun p ->
      let a = Partitioner.assign p ~num_partitions g in
      checki "length" (Graph.num_edges g) (Array.length a);
      Array.iter (fun x -> checkb "range" true (x >= 0 && x < num_partitions)) a)
    (Partitioner.paper_six @ Partitioner.streaming_baselines)

let test_sc_dc_are_modulo () =
  for i = 0 to 50 do
    let src = i * 13 and dst = i * 7 in
    checki "SC" (src mod num_partitions)
      (Strategy.edge_partition Strategy.Sc ~num_partitions ~src ~dst);
    checki "DC" (dst mod num_partitions)
      (Strategy.edge_partition Strategy.Dc ~num_partitions ~src ~dst)
  done

let test_one_d_collocates_sources () =
  let p1 = Strategy.edge_partition Strategy.One_d ~num_partitions ~src:42 ~dst:1 in
  let p2 = Strategy.edge_partition Strategy.One_d ~num_partitions ~src:42 ~dst:999 in
  checki "same source same partition" p1 p2

let test_crvc_collocates_pairs () =
  for i = 0 to 100 do
    let u = i and v = 2 * i + 1 in
    checki "unordered pair"
      (Strategy.edge_partition Strategy.Crvc ~num_partitions ~src:u ~dst:v)
      (Strategy.edge_partition Strategy.Crvc ~num_partitions ~src:v ~dst:u)
  done

let test_rvc_collocates_parallel_edges () =
  let p1 = Strategy.edge_partition Strategy.Rvc ~num_partitions ~src:5 ~dst:9 in
  let p2 = Strategy.edge_partition Strategy.Rvc ~num_partitions ~src:5 ~dst:9 in
  checki "same directed pair" p1 p2

let test_two_d_replication_bound () =
  (* 2D guarantees <= 2*ceil(sqrt N) replicas per vertex. *)
  let num_partitions = 16 in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Two_d) ~num_partitions g in
  let replicas = Metrics.replica_count g ~num_partitions a in
  Array.iter (fun r -> checkb "<= 2 sqrt N" true (r <= 8)) replicas

let test_strategy_errors () =
  Alcotest.check_raises "bad partitions"
    (Invalid_argument "Strategy.edge_partition: num_partitions <= 0") (fun () ->
      ignore (Strategy.edge_partition Strategy.Rvc ~num_partitions:0 ~src:1 ~dst:2));
  Alcotest.check_raises "negative id"
    (Invalid_argument "Strategy.edge_partition: negative vertex id") (fun () ->
      ignore (Strategy.edge_partition Strategy.Rvc ~num_partitions:4 ~src:(-1) ~dst:2))

let test_hashing_nonnegative () =
  for i = -1000 to 1000 do
    checkb "mix nonneg" true (Hashing.mix i >= 0)
  done

(* Brute-force metrics re-implementation for cross-checking. *)
let brute_metrics g a =
  let n = Graph.num_vertices g in
  let parts = Array.make n [] in
  Array.iteri
    (fun e p ->
      let add v = if not (List.mem p parts.(v)) then parts.(v) <- p :: parts.(v) in
      add (Graph.edge_src g e);
      add (Graph.edge_dst g e))
    a;
  let non_cut = ref 0 and cut = ref 0 and comm = ref 0 in
  Array.iter
    (fun ps ->
      match List.length ps with
      | 0 -> ()
      | 1 -> incr non_cut
      | k ->
          incr cut;
          comm := !comm + k)
    parts;
  (!non_cut, !cut, !comm)

let prop_metrics_match_bruteforce =
  Test_util.qtest "metrics match brute force" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      if Graph.num_edges g = 0 then true
      else begin
        let num_partitions = 5 in
        let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions g in
        let m = Metrics.compute g ~num_partitions a in
        let nc, c, cc = brute_metrics g a in
        m.Metrics.non_cut = nc && m.Metrics.cut = c && m.Metrics.comm_cost = cc
      end)

let test_metrics_identities () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Crvc) ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  checki "edges preserved" (Graph.num_edges g)
    (Array.fold_left ( + ) 0 m.Metrics.edges_per_partition);
  checkb "balance >= 1" true (m.Metrics.balance >= 1.0 -. 1e-9);
  checkb "cut + non_cut <= n" true (m.Metrics.cut + m.Metrics.non_cut <= Graph.num_vertices g);
  checkb "comm >= 2 * cut" true (m.Metrics.comm_cost >= 2 * m.Metrics.cut);
  checki "local vertex tables = comm + non_cut"
    (m.Metrics.comm_cost + m.Metrics.non_cut)
    (Array.fold_left ( + ) 0 m.Metrics.vertices_per_partition)

let test_metrics_single_partition () =
  let a = Array.make (Graph.num_edges g) 0 in
  let m = Metrics.compute g ~num_partitions:1 a in
  checki "no cut vertices" 0 m.Metrics.cut;
  checkb "balance 1" true (abs_float (m.Metrics.balance -. 1.0) < 1e-9);
  checkb "stdev 0" true (m.Metrics.part_stdev < 1e-9)

let test_metric_value_lookup () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  checkb "CommCost" true (Metrics.metric_value m "CommCost" = float_of_int m.Metrics.comm_cost);
  Alcotest.check_raises "unknown metric"
    (Invalid_argument "Metrics.metric_value: unknown metric Bogus") (fun () ->
      ignore (Metrics.metric_value m "Bogus"))

let test_streaming_deterministic () =
  List.iter
    (fun s ->
      let a1 = Streaming.assign s ~num_partitions g in
      let a2 = Streaming.assign s ~num_partitions g in
      Alcotest.(check (array int)) (Streaming.to_string s) a1 a2)
    [ Streaming.Dbh; Streaming.Greedy; Streaming.Hdrf 1.0 ]

let test_greedy_beats_random_on_replication () =
  let greedy = Streaming.assign Streaming.Greedy ~num_partitions g in
  let random = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions g in
  let comm a = (Metrics.compute g ~num_partitions a).Metrics.comm_cost in
  checkb "greedy replicates less" true (comm greedy < comm random)

let test_custom_partitioner () =
  let custom =
    Partitioner.Custom ("all-zero", fun ~num_partitions:_ g -> Array.make (Graph.num_edges g) 0)
  in
  let a = Partitioner.assign custom ~num_partitions g in
  checkb "all zero" true (Array.for_all (fun p -> p = 0) a);
  let bad = Partitioner.Custom ("bad", fun ~num_partitions:_ _ -> [| 99 |]) in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Partitioner.assign: custom partitioner returned wrong length") (fun () ->
      ignore (Partitioner.assign bad ~num_partitions g))

let test_partitioner_names () =
  checkb "parse RVC" true (Partitioner.of_string "RVC" <> None);
  checkb "parse hdrf" true (Partitioner.of_string "hdrf" <> None);
  checkb "parse junk" true (Partitioner.of_string "zzz" = None)

let prop_paper_six_cover_all_edges =
  Test_util.qtest "every strategy assigns every edge" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      List.for_all
        (fun p ->
          let a = Partitioner.assign p ~num_partitions:7 g in
          Array.length a = Graph.num_edges g && Array.for_all (fun x -> x >= 0 && x < 7) a)
        Partitioner.paper_six)

let suite =
  [
    Alcotest.test_case "strategy strings" `Quick test_strategy_strings;
    Alcotest.test_case "assignments in range" `Quick test_assignments_in_range;
    Alcotest.test_case "SC/DC are modulo" `Quick test_sc_dc_are_modulo;
    Alcotest.test_case "1D collocates sources" `Quick test_one_d_collocates_sources;
    Alcotest.test_case "CRVC collocates pairs" `Quick test_crvc_collocates_pairs;
    Alcotest.test_case "RVC deterministic per pair" `Quick test_rvc_collocates_parallel_edges;
    Alcotest.test_case "2D replication bound" `Quick test_two_d_replication_bound;
    Alcotest.test_case "strategy errors" `Quick test_strategy_errors;
    Alcotest.test_case "hash nonnegative" `Quick test_hashing_nonnegative;
    prop_metrics_match_bruteforce;
    Alcotest.test_case "metrics identities" `Quick test_metrics_identities;
    Alcotest.test_case "metrics single partition" `Quick test_metrics_single_partition;
    Alcotest.test_case "metric lookup" `Quick test_metric_value_lookup;
    Alcotest.test_case "streaming deterministic" `Quick test_streaming_deterministic;
    Alcotest.test_case "greedy beats random replication" `Quick test_greedy_beats_random_on_replication;
    Alcotest.test_case "custom partitioner" `Quick test_custom_partitioner;
    Alcotest.test_case "partitioner names" `Quick test_partitioner_names;
    prop_paper_six_cover_all_edges;
  ]

(* --- VTS/VTO identity and the analytic replication model --- *)

module Replication_model = Cutfit_partition.Replication_model

let test_vts_vto_identity () =
  List.iter
    (fun p ->
      let a = Partitioner.assign p ~num_partitions g in
      let m = Metrics.compute g ~num_partitions a in
      checki
        (Partitioner.name p ^ ": comm+noncut = same+other")
        (m.Metrics.comm_cost + m.Metrics.non_cut)
        (m.Metrics.vertices_to_same + m.Metrics.vertices_to_other))
    Partitioner.paper_six

let test_vts_bounded_by_vertices () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  checkb "VTS <= vertices" true (m.Metrics.vertices_to_same <= Graph.num_vertices g)

let test_dc_maximizes_vts () =
  (* Under DC with identity masters, every vertex with in-edges sits in
     its own master partition, so DC should collocate at least as well
     as RVC. *)
  let vts p =
    let a = Partitioner.assign (Partitioner.Hash p) ~num_partitions g in
    (Metrics.compute g ~num_partitions a).Metrics.vertices_to_same
  in
  checkb "DC >= RVC" true (vts Strategy.Dc >= vts Strategy.Rvc)

let test_expected_replicas_formula () =
  checkb "zero degree" true (Replication_model.expected_replicas ~degree:0 ~targets:8 = 0.0);
  checkb "degree 1" true
    (abs_float (Replication_model.expected_replicas ~degree:1 ~targets:8 -. 1.0) < 1e-9);
  checkb "huge degree saturates" true
    (abs_float (Replication_model.expected_replicas ~degree:100_000 ~targets:8 -. 8.0) < 1e-6);
  Alcotest.check_raises "bad targets"
    (Invalid_argument "Replication_model.expected_replicas: targets <= 0") (fun () ->
      ignore (Replication_model.expected_replicas ~degree:3 ~targets:0))

let test_prediction_close_for_random_cuts () =
  (* For RVC the balls-in-bins model is exact in expectation; on a
     single sample it should land within ~15%. *)
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  let predicted = Replication_model.predict_comm_cost Strategy.Rvc ~num_partitions g in
  let measured = float_of_int m.Metrics.comm_cost in
  checkb "within 15%" true (abs_float (predicted -. measured) /. measured < 0.15)

let test_prediction_ranks_2d_below_rvc () =
  let ranked = Replication_model.rank_strategies ~num_partitions g in
  let pos s =
    let rec go i = function
      | [] -> -1
      | (x, _) :: rest -> if x = s then i else go (i + 1) rest
    in
    go 0 ranked
  in
  checkb "2D cheaper than RVC (replication bound)" true (pos Strategy.Two_d < pos Strategy.Rvc)

let test_replication_factor_positive () =
  let f = Replication_model.predict_replication_factor Strategy.Crvc ~num_partitions g in
  checkb "at least 1" true (f >= 1.0)

let extended_suite =
  [
    Alcotest.test_case "VTS/VTO identity" `Quick test_vts_vto_identity;
    Alcotest.test_case "VTS bounded" `Quick test_vts_bounded_by_vertices;
    Alcotest.test_case "DC collocates masters" `Quick test_dc_maximizes_vts;
    Alcotest.test_case "expected replicas formula" `Quick test_expected_replicas_formula;
    Alcotest.test_case "prediction close for RVC" `Quick test_prediction_close_for_random_cuts;
    Alcotest.test_case "prediction ranks 2D < RVC" `Quick test_prediction_ranks_2d_below_rvc;
    Alcotest.test_case "replication factor >= 1" `Quick test_replication_factor_positive;
  ]

let suite = suite @ extended_suite

(* --- hybrid-cut --- *)

let test_hybrid_low_degree_groups_by_dst () =
  (* In a graph where every in-degree is 1, hybrid = DC-with-hash. *)
  let chain = Test_util.graph_of_edges ~n:10 (List.init 9 (fun i -> (i, i + 1))) in
  let a = Streaming.assign (Streaming.Hybrid 5) ~num_partitions:4 chain in
  Array.iteri
    (fun e p ->
      checki "hashed by dst" (Hashing.hash1 (Graph.edge_dst chain e) ~num_partitions:4) p)
    a

let test_hybrid_spreads_hub_in_edges () =
  (* A star with 100 in-edges to the hub: hybrid with threshold 10 must
     spread them by source, touching many partitions. *)
  let star = Test_util.graph_of_edges ~n:101 (List.init 100 (fun i -> (i + 1, 0))) in
  let a = Streaming.assign (Streaming.Hybrid 10) ~num_partitions:8 star in
  let used = Array.make 8 false in
  Array.iter (fun p -> used.(p) <- true) a;
  let count = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used in
  checkb "spread over most partitions" true (count >= 6);
  (* DC by contrast concentrates them all in one partition. *)
  let dc = Partitioner.assign (Partitioner.Hash Strategy.Dc) ~num_partitions:8 star in
  checkb "DC concentrates" true (Array.for_all (fun p -> p = dc.(0)) dc)

let test_hybrid_parse () =
  checkb "parses" true (Streaming.of_string "hybrid" = Some (Streaming.Hybrid 100))

let suite =
  suite
  @ [
      Alcotest.test_case "hybrid groups by dst" `Quick test_hybrid_low_degree_groups_by_dst;
      Alcotest.test_case "hybrid spreads hub" `Quick test_hybrid_spreads_hub_in_edges;
      Alcotest.test_case "hybrid parse" `Quick test_hybrid_parse;
    ]

(* --- streaming order + quality invariants --- *)

let test_streaming_order_determinism () =
  List.iter
    (fun h ->
      let a1 = Streaming.assign ~order:123L h ~num_partitions g in
      let a2 = Streaming.assign ~order:123L h ~num_partitions g in
      checkb "same order seed reproduces bit-exactly" true (a1 = a2);
      checki "indexed by original edge id" (Graph.num_edges g) (Array.length a1);
      Array.iter (fun p -> checkb "range" true (p >= 0 && p < num_partitions)) a1)
    [ Streaming.Greedy; Streaming.Hdrf 1.0; Streaming.Dbh ];
  checkb "order changes the greedy stream" true
    (Streaming.assign ~order:1L Streaming.Greedy ~num_partitions g
    <> Streaming.assign ~order:2L Streaming.Greedy ~num_partitions g);
  (* Hashing heuristics consult no stream state, so any visit order
     lands every edge on the same partition. *)
  checkb "DBH is order-oblivious" true
    (Streaming.assign ~order:1L Streaming.Dbh ~num_partitions g
    = Streaming.assign Streaming.Dbh ~num_partitions g)

(* A hub-heavy social graph: superstar hubs concentrate a big share of
   the edges, the regime the degree-aware heuristics are built for. *)
let hubby =
  Cutfit_gen.Social.generate
    {
      Cutfit_gen.Social.default with
      Cutfit_gen.Social.vertices = 1500;
      edges = 9000;
      superstar_share = 0.15;
      seed = 5L;
    }

let stream_metrics h = Metrics.compute hubby ~num_partitions (Streaming.assign h ~num_partitions hubby)

let test_hdrf_replication_beats_greedy () =
  (* HDRF's whole point (Petroni et al. 2015): replicating the high-
     degree endpoints first yields a lower replication factor than
     plain greedy on power-law graphs. *)
  let rf h = (stream_metrics h).Metrics.replication_factor in
  checkb "HDRF <= Greedy replication on a hub-heavy graph" true
    (rf (Streaming.Hdrf 1.0) <= rf Streaming.Greedy)

let test_hybrid_balance_bound () =
  (* Hybrid hashes every placement (by dst below the threshold, by src
     at hubs), so its edge balance stays near-uniform even when hubs
     hold a large share of the edges. *)
  let m = stream_metrics (Streaming.Hybrid 30) in
  checkb "hybrid balance stays near uniform" true (m.Metrics.balance <= 1.5)

let test_dbh_hashes_lower_degree_endpoint () =
  let a = Streaming.assign Streaming.Dbh ~num_partitions g in
  let deg v = Graph.out_degree g v + Graph.in_degree g v in
  Array.iteri
    (fun e p ->
      let s = Graph.edge_src g e and d = Graph.edge_dst g e in
      let key = if deg s <= deg d then s else d in
      checki "hashed by the lower-degree endpoint (ties to src)"
        (Hashing.hash1 key ~num_partitions) p)
    a

let suite =
  suite
  @ [
      Alcotest.test_case "streaming order determinism" `Quick test_streaming_order_determinism;
      Alcotest.test_case "HDRF replication <= greedy" `Quick test_hdrf_replication_beats_greedy;
      Alcotest.test_case "hybrid balance bound" `Quick test_hybrid_balance_bound;
      Alcotest.test_case "DBH lower-degree endpoint" `Quick test_dbh_hashes_lower_degree_endpoint;
    ]
