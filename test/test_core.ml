module Advisor = Cutfit.Advisor
module Pipeline = Cutfit.Pipeline
module Strategy = Cutfit.Strategy
module Partitioner = Cutfit.Partitioner
module Metrics = Cutfit.Metrics
module Trace = Cutfit.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let g = Test_util.random_graph ~seed:123L ~n:400 ~m:3000
let cluster = Test_util.tiny_cluster ()

(* --- Advisor --- *)

let test_predictive_metric () =
  Alcotest.(check string) "PR" "CommCost" (Advisor.predictive_metric Advisor.Pagerank);
  Alcotest.(check string) "CC" "CommCost" (Advisor.predictive_metric Advisor.Connected_components);
  Alcotest.(check string) "TR" "Cut" (Advisor.predictive_metric Advisor.Triangle_count);
  Alcotest.(check string) "SSSP" "CommCost" (Advisor.predictive_metric Advisor.Shortest_paths)

let test_classify () =
  checkb "follow-scale is large" true (Advisor.classify ~paper_scale_edges:2.0e8 = Advisor.Large);
  checkb "pocek-scale is small" true (Advisor.classify ~paper_scale_edges:3.0e7 = Advisor.Small)

let test_heuristic_rules () =
  checkb "PR large -> 2D" true
    (Advisor.heuristic Advisor.Pagerank ~size:Advisor.Large ~num_partitions:128 = Strategy.Two_d);
  checkb "PR small -> DC" true
    (Advisor.heuristic Advisor.Pagerank ~size:Advisor.Small ~num_partitions:128 = Strategy.Dc);
  checkb "CC small coarse -> 1D" true
    (Advisor.heuristic Advisor.Connected_components ~size:Advisor.Small ~num_partitions:128
    = Strategy.One_d);
  checkb "CC small fine -> 2D" true
    (Advisor.heuristic Advisor.Connected_components ~size:Advisor.Small ~num_partitions:256
    = Strategy.Two_d);
  checkb "TR -> CRVC" true
    (Advisor.heuristic Advisor.Triangle_count ~size:Advisor.Large ~num_partitions:128
    = Strategy.Crvc)

let test_measure_ranking () =
  let ranked = Advisor.measure Advisor.Pagerank ~num_partitions:16 g in
  checki "six candidates" 6 (List.length ranked);
  let scores = List.map (fun r -> r.Advisor.score) ranked in
  checkb "ascending" true (List.sort compare scores = scores);
  (* The winner really does minimize CommCost among the six. *)
  let best = List.hd ranked in
  List.iter
    (fun r -> checkb "winner minimal" true (best.Advisor.score <= r.Advisor.score))
    ranked

let test_measure_respects_metric () =
  let pr = List.hd (Advisor.measure Advisor.Pagerank ~num_partitions:16 g) in
  checkb "PR score is CommCost" true
    (pr.Advisor.score = float_of_int pr.Advisor.metrics.Metrics.comm_cost);
  let tr = List.hd (Advisor.measure Advisor.Triangle_count ~num_partitions:16 g) in
  checkb "TR score is Cut" true (tr.Advisor.score = float_of_int tr.Advisor.metrics.Metrics.cut)

let test_advise_small_measures () =
  let s = Advisor.advise Advisor.Pagerank ~scale:1.0 ~num_partitions:16 g in
  let best = List.hd (Advisor.measure Advisor.Pagerank ~num_partitions:16 g) in
  checkb "advise = measured best" true (s = best.Advisor.strategy)

let test_advise_large_uses_heuristic () =
  let s =
    Advisor.advise ~measure_threshold_edges:1 Advisor.Pagerank ~scale:1.0e5 ~num_partitions:128 g
  in
  checkb "falls back to heuristic (large)" true (s = Strategy.Two_d)

let test_amortized_converges_to_measure () =
  (* With effectively infinite reuse the build cost amortizes away, so
     the amortized ranking must agree with the plain measured one. *)
  let plain = Advisor.measure Advisor.Pagerank ~num_partitions:16 g in
  let amortized =
    Advisor.measure_amortized ~expected_reuse:1.0e12 Advisor.Pagerank ~num_partitions:16 g
  in
  checki "same candidate count" (List.length plain) (List.length amortized);
  List.iter2
    (fun (p : Advisor.ranked) (a : Advisor.amortized) ->
      checkb "same order as measure" true (p.Advisor.strategy = a.Advisor.base.Advisor.strategy))
    plain amortized

let test_amortized_ranking () =
  let amortized =
    Advisor.measure_amortized ~expected_reuse:1.0 Advisor.Pagerank ~num_partitions:16 g
  in
  List.iter
    (fun (a : Advisor.amortized) ->
      checkb "amortized_s = exec + build/reuse" true
        (a.Advisor.amortized_s = a.Advisor.exec_s +. (a.Advisor.build_s /. 1.0));
      checkb "build predicted positive" true (a.Advisor.build_s > 0.0);
      checkb "exec predicted positive" true (a.Advisor.exec_s > 0.0))
    amortized;
  let costs = List.map (fun (a : Advisor.amortized) -> a.Advisor.amortized_s) amortized in
  checkb "ascending by amortized cost" true (List.sort compare costs = costs);
  Alcotest.check_raises "reuse must be positive"
    (Invalid_argument "Advisor.measure_amortized: expected_reuse <= 0") (fun () ->
      ignore (Advisor.measure_amortized ~expected_reuse:0.0 Advisor.Pagerank ~num_partitions:16 g))

let test_predicted_exec_monotone () =
  (* predicted_exec_s is monotone in the predictive metric: the measured
     winner can never be predicted slower than the measured loser. *)
  let ranked = Advisor.measure Advisor.Pagerank ~num_partitions:16 g in
  let predict (r : Advisor.ranked) =
    Advisor.predicted_exec_s Advisor.Pagerank g r.Advisor.metrics
  in
  let preds = List.map predict ranked in
  checkb "predictions follow the ranking" true (List.sort compare preds = preds)

let test_algorithm_strings () =
  List.iter
    (fun a ->
      match Advisor.algorithm_of_string (Advisor.algorithm_name a) with
      | Some a' -> checkb "roundtrip" true (a = a')
      | None -> Alcotest.fail "parse failed")
    [ Advisor.Pagerank; Advisor.Connected_components; Advisor.Triangle_count;
      Advisor.Shortest_paths ]

(* --- Pipeline --- *)

let test_pipeline_pagerank () =
  let p = Pipeline.prepare ~cluster ~algorithm:Advisor.Pagerank g in
  let ranks, trace = Pipeline.pagerank ~iterations:5 p in
  let expected = Cutfit.Pagerank.reference ~iterations:5 g in
  checkb "matches reference" true
    (Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) ranks expected);
  checkb "trace completed" true (Trace.completed trace)

let test_pipeline_cc () =
  let p = Pipeline.prepare ~cluster ~algorithm:Advisor.Connected_components g in
  let labels, _ = Pipeline.connected_components ~iterations:100 p in
  Alcotest.(check (array int)) "labels" (Cutfit.Connected_components.reference g) labels

let test_pipeline_triangles () =
  let p = Pipeline.prepare ~cluster ~algorithm:Advisor.Triangle_count g in
  let _, total, _ = Pipeline.triangles p in
  checki "total" (Cutfit.Triangles.count g) total

let test_pipeline_sssp () =
  let p = Pipeline.prepare ~cluster ~algorithm:Advisor.Shortest_paths g in
  let d, _ = Pipeline.shortest_paths ~landmarks:[| 0 |] p in
  checkb "matches BFS" true (d = Cutfit.Sssp.reference g ~landmarks:[| 0 |])

let test_pipeline_explicit_partitioner () =
  let p =
    Pipeline.prepare ~cluster ~partitioner:(Partitioner.Hash Strategy.Sc)
      ~algorithm:Advisor.Pagerank g
  in
  Alcotest.(check string) "kept" "SC" (Partitioner.name p.Pipeline.partitioner)

let test_pipeline_metrics () =
  let p = Pipeline.prepare ~cluster ~algorithm:Advisor.Pagerank g in
  let m = Pipeline.metrics p in
  checki "edges preserved" (Cutfit.Graph.num_edges g)
    (Array.fold_left ( + ) 0 m.Metrics.edges_per_partition)

let test_compare_partitioners () =
  let times = Pipeline.compare_partitioners ~cluster ~algorithm:Advisor.Pagerank g in
  checki "six entries" 6 (List.length times);
  let ts = List.map snd times in
  checkb "ascending" true (List.sort compare ts = ts);
  checkb "all completed" true (List.for_all (fun t -> not (Float.is_nan t)) ts)

let suite =
  [
    Alcotest.test_case "predictive metric" `Quick test_predictive_metric;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "heuristic rules" `Quick test_heuristic_rules;
    Alcotest.test_case "measure ranking" `Quick test_measure_ranking;
    Alcotest.test_case "measure respects metric" `Quick test_measure_respects_metric;
    Alcotest.test_case "advise small measures" `Quick test_advise_small_measures;
    Alcotest.test_case "advise large heuristic" `Quick test_advise_large_uses_heuristic;
    Alcotest.test_case "amortized converges to measure" `Quick test_amortized_converges_to_measure;
    Alcotest.test_case "amortized ranking" `Quick test_amortized_ranking;
    Alcotest.test_case "predicted exec monotone" `Quick test_predicted_exec_monotone;
    Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
    Alcotest.test_case "pipeline pagerank" `Quick test_pipeline_pagerank;
    Alcotest.test_case "pipeline cc" `Quick test_pipeline_cc;
    Alcotest.test_case "pipeline triangles" `Quick test_pipeline_triangles;
    Alcotest.test_case "pipeline sssp" `Quick test_pipeline_sssp;
    Alcotest.test_case "pipeline explicit partitioner" `Quick test_pipeline_explicit_partitioner;
    Alcotest.test_case "pipeline metrics" `Quick test_pipeline_metrics;
    Alcotest.test_case "compare partitioners" `Quick test_compare_partitioners;
  ]
