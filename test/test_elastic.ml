(* Elasticity and multi-tenancy end to end: the scale-event DSL and its
   stateless realization, heterogeneous host draws, the perturb-only-
   time-and-locality invariant against a static baseline (boxed and
   compact engines), and the workload engine's membership, preemption,
   fairness, quota and breaker-namespace laws. *)

module Elastic = Cutfit_bsp.Elastic
module Trace = Cutfit_bsp.Trace
module Pipeline = Cutfit.Pipeline
module Advisor = Cutfit.Advisor
module Sanitize = Cutfit.Sanitize
module Check = Cutfit.Check
module Elastic_check = Check.Elastic_check
module Fault_check = Check.Fault_check
module Job = Cutfit_workload.Job
module Engine = Cutfit_workload.Engine
module Workload_check = Cutfit_workload.Workload_check

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_clean what vs = Alcotest.(check int) (what ^ " is clean") 0 (List.length vs)
let graph name = Cutfit.Datasets.generate (Cutfit.Datasets.find name)

(* --- the scale-event DSL --- *)

let test_parse_spec () =
  (match Elastic.parse_spec "leave@5-1, join@9+2, preempt@12:r3" with
  | [
   Elastic.Leave { step = 5; count = 1 };
   Elastic.Join { step = 9; count = 2 };
   Elastic.Preempt { step = 12; retries = 3 };
  ] ->
      ()
  | _ -> Alcotest.fail "spec did not parse to the expected items");
  (* defaults: +1, -1, r1 *)
  (match Elastic.parse_spec "join@3,leave@4,preempt@2" with
  | [
   Elastic.Join { count = 1; _ }; Elastic.Leave { count = 1; _ }; Elastic.Preempt { retries = 1; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "defaults did not apply");
  let c = Elastic.config ~seed:7 "leave@5-1,join@9+2" in
  checks "raw spec preserved" "leave@5-1,join@9+2" c.Elastic.raw;
  checki "seed preserved" 7 c.Elastic.seed;
  checki "total joins" 2 (Elastic.total_joins c);
  let d = Elastic.describe c in
  checkb "describe names the spec" true
    (String.length d > 0
    &&
    let rec has i =
      i + 5 <= String.length d && (String.sub d i 5 = "leave" || has (i + 1))
    in
    has 0)

let test_parse_spec_rejects () =
  let rejects spec =
    match Elastic.parse_spec spec with
    | exception Elastic.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "spec %S should not parse" spec)
  in
  List.iter rejects
    [
      "join@0" (* the build stage never scales *);
      "leave@0";
      "preempt@0";
      "join@3-1" (* the sign is part of the grammar *);
      "leave@3+1";
      "join@2+0";
      "preempt@2:r0";
      "preempt@2:x3" (* option not valid for the kind *);
      "meteor@3" (* unknown kind *);
      "join" (* missing @ *);
      "" (* no events *);
    ]

(* --- stateless realization --- *)

let test_events_are_stateless () =
  let c = Elastic.config ~seed:11 "leave@2-1,join@2+1,preempt@5:r2" in
  (* Same query, any order, any number of times: identical answers. *)
  let at2 = Elastic.events_at c ~step:2 in
  checki "both step-2 events fire" 2 (List.length at2);
  checkb "requery is identical" true (at2 = Elastic.events_at c ~step:2);
  checki "quiet steps are empty" 0 (List.length (Elastic.events_at c ~step:3));
  let v = Elastic.victim c ~step:5 ~alive:4 in
  checkb "victim in range" true (v >= 0 && v < 4);
  checki "victim draw is stateless" v (Elastic.victim c ~step:5 ~alive:4);
  (* Different (step, alive) keys eventually vary the draw. *)
  let varies =
    List.exists
      (fun step -> Elastic.victim c ~step ~alive:16 <> Elastic.victim c ~step:5 ~alive:16)
      [ 6; 7; 8; 9; 10; 11; 12 ]
  in
  checkb "victim varies with the step" true varies

let test_hetero_draws () =
  let h = Elastic.draw_hetero ~seed:5 ~executors:8 in
  checkb "draw is deterministic" true (h = Elastic.draw_hetero ~seed:5 ~executors:8);
  Array.iter
    (fun s -> checkb "speed in [0.6, 1.4]" true (s >= 0.6 && s <= 1.4))
    h.Elastic.speeds;
  Array.iter
    (fun b -> checkb "bandwidth in [0.6, 1.4]" true (b >= 0.6 && b <= 1.4))
    h.Elastic.bandwidths;
  checkb "lookup reads the array" true (Float.equal (Elastic.speed h 3) h.Elastic.speeds.(3));
  checkb "late joiners run at 1.0" true
    (Float.equal (Elastic.speed h 99) 1.0 && Float.equal (Elastic.bandwidth h 99) 1.0);
  let u = Elastic.uniform ~executors:4 in
  checkb "uniform is neutral" true
    (Array.for_all (Float.equal 1.0) u.Elastic.speeds
    && Array.for_all (Float.equal 1.0) u.Elastic.bandwidths);
  let e = Elastic.hetero_of_spec ~executors:4 "2.0/0.5,1.0" in
  checkb "explicit entries cycle" true
    (Float.equal (Elastic.speed e 0) 2.0
    && Float.equal (Elastic.bandwidth e 0) 0.5
    && Float.equal (Elastic.speed e 1) 1.0
    && Float.equal (Elastic.bandwidth e 1) 1.0
    && Float.equal (Elastic.speed e 2) 2.0);
  match Elastic.hetero_of_spec ~executors:2 "fast" with
  | exception Elastic.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed hetero spec should not parse"

(* --- perturb time and locality only --- *)

let elastic_cfg = Elastic.config ~seed:3 "leave@2-1,join@4+2"

let test_elastic_preserves_values_pr () =
  let g = graph "pocek" in
  let run ?elastic ?hetero () =
    let p = Pipeline.prepare ?elastic ?hetero ~algorithm:Advisor.Pagerank g in
    Pipeline.pagerank p
  in
  let static_ranks, static_trace = run () in
  let hetero = Elastic.draw_hetero ~seed:3 ~executors:4 in
  let elastic_ranks, elastic_trace = run ~elastic:elastic_cfg ~hetero () in
  checkb "values are bit-identical" true
    (String.equal
       (Fault_check.float_attrs_digest static_ranks)
       (Fault_check.float_attrs_digest elastic_ranks));
  checkb "membership changed" true (Trace.num_reshuffles elastic_trace = 2);
  checki "static runs do not reshuffle" 0 (Trace.num_reshuffles static_trace);
  check_clean "equivalence"
    (Elastic_check.equivalence ~label:"PR pocek" ~executors:4 ~num_partitions:128
       ~baseline:static_trace ~elastic:elastic_trace
       ~baseline_attrs:(Fault_check.float_attrs_digest static_ranks)
       ~elastic_attrs:(Fault_check.float_attrs_digest elastic_ranks) ());
  check_clean "elastic conservation" (Elastic_check.validate_elastic elastic_trace)

let test_elastic_preserves_values_cc_sssp () =
  let g = graph "roadnet_pa" in
  let check_algo name run_algo =
    let static_attrs, static_trace = run_algo None in
    let elastic_attrs, elastic_trace = run_algo (Some elastic_cfg) in
    checkb (name ^ " values are bit-identical") true (String.equal static_attrs elastic_attrs);
    check_clean (name ^ " equivalence")
      (Elastic_check.equivalence ~label:name ~executors:4 ~baseline:static_trace
         ~elastic:elastic_trace ~baseline_attrs:static_attrs ~elastic_attrs ())
  in
  check_algo "CC" (fun elastic ->
      let p = Pipeline.prepare ?elastic ~algorithm:Advisor.Connected_components g in
      let labels, t = Pipeline.connected_components p in
      (Fault_check.int_attrs_digest labels, t));
  check_algo "SSSP" (fun elastic ->
      let p = Pipeline.prepare ?elastic ~algorithm:Advisor.Shortest_paths g in
      let d, t = Pipeline.shortest_paths ~landmarks:[| 0; 7 |] p in
      (Fault_check.int_attrs_digest (Array.concat (Array.to_list d)), t))

let test_sanitizer_green_under_elastic () =
  (* The full sanitizer — including the compact-kernel engines suite at
     domains 1, 2 and 4 — stays green when the boxed run is elastic and
     heterogeneous. *)
  let g = graph "pocek" in
  let hetero = Elastic.draw_hetero ~seed:9 ~executors:4 in
  let report =
    Sanitize.check_run ~elastic:elastic_cfg ~hetero ~engine_domains:[ 1; 2; 4 ]
      ~algorithm:Advisor.Pagerank g
  in
  checkb "sanitizer is green" true (Sanitize.ok report);
  checkb "elastic suite ran" true (List.mem_assoc "elastic" report.Sanitize.suites);
  checkb "engines suite ran" true (List.mem_assoc "engines" report.Sanitize.suites)

(* --- workload membership --- *)

let two_tenant_stream ~jobs ~seed =
  Job.generate ~seed ~jobs ~tenants:[ ("acme", 3.0); ("beta", 1.0) ] (List.hd Job.mixes)

let ring_run ?scale_events ?tenant_weights ?tenant_quota ?fairness ?max_retries ?breaker_k jobs
    ~seed =
  let sink, contents = Cutfit.Sink.ring ~capacity:65536 () in
  let telemetry = Cutfit.Telemetry.create ~sinks:[ sink ] () in
  let r =
    Engine.run ?scale_events ?tenant_weights ?tenant_quota ?fairness ?max_retries ?breaker_k
      ~telemetry ~seed jobs
  in
  Cutfit.Telemetry.close telemetry;
  (r, contents ())

let test_workload_scale_counters () =
  let r, events =
    ring_run ~scale_events:(Elastic.config "leave@5-1,join@9+2") ~seed:7L
      (Job.generate ~seed:7L ~jobs:24 (List.hd Job.mixes))
  in
  checki "one leave applied" 1 r.Engine.leaves;
  checki "one join applied" 1 r.Engine.joins;
  checki "no preemptions" 0 r.Engine.preemptions;
  checkb "spec recorded" true (r.Engine.scale_spec = Some "leave@5-1,join@9+2");
  (* Satellite law: a leave invalidates every cached partitioning that
     referenced the departed executor, so no stale-placement hit is ever
     served. *)
  checki "no stale placement hits" 0 r.Engine.stale_placement_hits;
  check_clean "workload report" (Workload_check.report ~events r)

let test_preempt_is_budget_neutral () =
  (* max_retries = 0: an involuntary preemption must still requeue and
     finish — the reclaim consumes no retry budget. *)
  let r, events =
    ring_run ~scale_events:(Elastic.config "preempt@6:r1") ~max_retries:0 ~seed:7L
      (Job.generate ~seed:7L ~jobs:16 (List.hd Job.mixes))
  in
  checkb "a preemption fired" true (r.Engine.preemptions >= 1);
  checki "no job failed" 0 (Engine.failed_jobs r);
  let preempted =
    List.filter (fun (j : Engine.job_record) -> j.Engine.preemptions > 0) r.Engine.records
  in
  checkb "the preempted job retried past its zero budget" true
    (List.exists
       (fun (j : Engine.job_record) ->
         j.Engine.attempts > 1 && j.Engine.outcome = "completed")
       preempted);
  check_clean "preempt report" (Workload_check.report ~events r)

let test_unarmed_run_reports_zero () =
  let r, events = ring_run ~seed:5L (Job.generate ~seed:5L ~jobs:8 (List.hd Job.mixes)) in
  checkb "no spec recorded" true (r.Engine.scale_spec = None);
  checki "no joins" 0 r.Engine.joins;
  checki "no leaves" 0 r.Engine.leaves;
  checki "no preemptions" 0 r.Engine.preemptions;
  check_clean "static report" (Workload_check.report ~events r)

(* --- multi-tenancy --- *)

let test_fairness_no_violations () =
  let r, events =
    ring_run ~fairness:true
      ~tenant_weights:[ ("acme", 2.0); ("beta", 1.0) ]
      ~seed:7L (two_tenant_stream ~jobs:32 ~seed:7L)
  in
  checkb "fairness was on" true r.Engine.fairness;
  checki "scheduler never violated its own rule" 0 r.Engine.fairness_violations;
  let tenants =
    List.sort_uniq String.compare
      (List.map (fun (j : Engine.job_record) -> j.Engine.job.Job.tenant) r.Engine.records)
  in
  checkb "both tenants ran" true (tenants = [ "acme"; "beta" ]);
  check_clean "fairness report" (Workload_check.report ~events r)

let test_tenant_quota_throttles () =
  (* Six simultaneous arrivals from one tenant against a quota of 1:
     everything beyond the first pending job is shed as "quota". *)
  let jobs =
    List.init 6 (fun i ->
        {
          Job.id = i;
          arrival_s = 0.1 *. float_of_int i;
          tenant = "storm";
          algorithm = Advisor.Pagerank;
          dataset = "pocek";
          num_partitions = 64;
        })
  in
  let r, events = ring_run ~tenant_quota:1 ~seed:11L jobs in
  let sheds =
    List.filter (fun (j : Engine.job_record) -> j.Engine.outcome = "shed") r.Engine.records
  in
  checkb "quota shed at least one job" true (List.length sheds >= 1);
  (* PR-on-pocek jobs end as "max-supersteps": anything the quota let
     through must have actually run. *)
  checkb "some jobs still ran" true
    (List.exists
       (fun (j : Engine.job_record) -> j.Engine.outcome <> "shed")
       r.Engine.records);
  check_clean "quota report" (Workload_check.report ~events r)

let test_breaker_scopes_isolate_tenants () =
  checks "default tenant keeps the bare key" "pocek"
    (Engine.breaker_scope ~tenant:Job.default_tenant ~dataset:"pocek");
  checks "tenants get a namespaced key" "acme/pocek"
    (Engine.breaker_scope ~tenant:"acme" ~dataset:"pocek");
  (* A crash storm over two tenants sharing a dataset: every breaker
     trip carries its owning tenant, and the per-scope state machine
     (enforced by the workload sanitizer) never mixes them. *)
  let jobs =
    List.init 8 (fun i ->
        {
          Job.id = i;
          arrival_s = 0.5 *. float_of_int i;
          tenant = (if i mod 2 = 0 then "acme" else "beta");
          algorithm = Advisor.Pagerank;
          dataset = "pocek";
          num_partitions = 64;
        })
  in
  let faults = Cutfit_bsp.Faults.config ~seed:4 ~max_failures:0 "rand@0.8" in
  let sink, contents = Cutfit.Sink.ring ~capacity:65536 () in
  let telemetry = Cutfit.Telemetry.create ~sinks:[ sink ] () in
  let r =
    Engine.run ~faults ~max_retries:6 ~breaker_k:2 ~breaker_cooldown_s:1.0
      ~selection:Engine.Heuristic ~telemetry ~seed:11L jobs
  in
  Cutfit.Telemetry.close telemetry;
  List.iter
    (fun (t : Engine.breaker_trip) ->
      checkb "trip belongs to a real tenant" true
        (t.Engine.trip_tenant = "acme" || t.Engine.trip_tenant = "beta");
      checks "trip keeps the bare dataset" "pocek" t.Engine.trip_dataset)
    r.Engine.breaker_trips;
  check_clean "breaker-namespace report" (Workload_check.report ~events:(contents ()) r)

let test_tenant_deadline_override () =
  (* A 1-second SLO for one tenant only: its jobs miss, the other
     tenant's jobs are untouched by any deadline. *)
  let r, events =
    ring_run ~seed:7L (two_tenant_stream ~jobs:24 ~seed:7L)
  in
  ignore r;
  ignore events;
  let sink, contents = Cutfit.Sink.ring ~capacity:65536 () in
  let telemetry = Cutfit.Telemetry.create ~sinks:[ sink ] () in
  let r =
    Engine.run
      ~tenant_deadlines:[ ("acme", Engine.Absolute 1.0) ]
      ~telemetry ~seed:7L (two_tenant_stream ~jobs:24 ~seed:7L)
  in
  Cutfit.Telemetry.close telemetry;
  let missed t =
    List.exists
      (fun (j : Engine.job_record) ->
        String.equal j.Engine.job.Job.tenant t && j.Engine.outcome = "deadline")
      r.Engine.records
  in
  checkb "the constrained tenant misses its SLO" true (missed "acme");
  checkb "the unconstrained tenant never misses" true (not (missed "beta"));
  check_clean "tenant-deadline report" (Workload_check.report ~events:(contents ()) r)

(* --- determinism --- *)

let test_elastic_workload_digest_stable () =
  let run () =
    Engine.run
      ~scale_events:(Elastic.config "leave@5-1,join@9+2,preempt@12:r1")
      ~fairness:true
      ~tenant_weights:[ ("acme", 2.0); ("beta", 1.0) ]
      ~seed:7L (two_tenant_stream ~jobs:24 ~seed:7L)
  in
  check_clean "elastic workload digest"
    (Workload_check.run_twice ~label:"elastic two-tenant workload" run);
  checks "digest is reproducible" (Workload_check.digest (run ())) (Workload_check.digest (run ()))

let suite =
  [
    Alcotest.test_case "scale-event spec parses" `Quick test_parse_spec;
    Alcotest.test_case "scale-event spec rejects malformed input" `Quick test_parse_spec_rejects;
    Alcotest.test_case "event realization is stateless" `Quick test_events_are_stateless;
    Alcotest.test_case "hetero draws are deterministic and bounded" `Quick test_hetero_draws;
    Alcotest.test_case "elastic PR values match the static baseline" `Quick
      test_elastic_preserves_values_pr;
    Alcotest.test_case "elastic CC/SSSP values match the static baseline" `Quick
      test_elastic_preserves_values_cc_sssp;
    Alcotest.test_case "sanitizer green under elastic + hetero" `Quick
      test_sanitizer_green_under_elastic;
    Alcotest.test_case "workload scale counters and stale placements" `Quick
      test_workload_scale_counters;
    Alcotest.test_case "preemption is budget-neutral" `Quick test_preempt_is_budget_neutral;
    Alcotest.test_case "unarmed runs report zero elastic activity" `Quick
      test_unarmed_run_reports_zero;
    Alcotest.test_case "fairness holds on a two-tenant stream" `Quick test_fairness_no_violations;
    Alcotest.test_case "tenant quota throttles admissions" `Quick test_tenant_quota_throttles;
    Alcotest.test_case "breaker namespaces isolate tenants" `Quick
      test_breaker_scopes_isolate_tenants;
    Alcotest.test_case "tenant deadline overrides apply per tenant" `Quick
      test_tenant_deadline_override;
    Alcotest.test_case "elastic workload digest is stable" `Quick
      test_elastic_workload_digest_stable;
  ]
