(* The compact CSR layer: structural round-trip against the boxed
   Pgraph, bit-identical results across engines and domain counts, and
   equivalence under an injected fault schedule. *)

module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module Faults = Cutfit_bsp.Faults
module Check = Cutfit_check
module Pagerank = Cutfit_algo.Pagerank
module Cc = Cutfit_algo.Connected_components
module Tr = Cutfit_algo.Triangle_count
module Sssp = Cutfit_algo.Sssp
module B1 = Bigarray.Array1

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let cluster = Test_util.tiny_cluster ()
let np = cluster.Cluster.num_partitions

let pg_of g =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  Pgraph.build g ~num_partitions:np a

let g = Test_util.random_graph ~seed:424L ~n:200 ~m:1400
let pg = pg_of g
let csr = Csr.build pg
let domains_counts = [ 1; 2; 4 ]

(* --- structural round-trip ---------------------------------------- *)

let test_roundtrip_sizes () =
  checki "vertices" (Graph.num_vertices g) csr.Csr.num_vertices;
  checki "edges" (Graph.num_edges g) csr.Csr.num_edges;
  checki "partitions" (Pgraph.num_partitions pg) csr.Csr.num_partitions;
  checki "slots" (Pgraph.total_replicas pg) csr.Csr.num_slots;
  checki "edge offsets end" csr.Csr.num_edges (B1.get csr.Csr.part_off csr.Csr.num_partitions);
  checki "slot offsets end" csr.Csr.num_slots (B1.get csr.Csr.slot_off csr.Csr.num_partitions)

let test_roundtrip_edges_in_partition_order () =
  (* The flat edge arrays replay iter_partition_edges exactly: same
     partition ranges, same order, same endpoints. *)
  for p = 0 to csr.Csr.num_partitions - 1 do
    let e = ref (B1.get csr.Csr.part_off p) in
    Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
        checki "src" src (B1.get csr.Csr.edge_src !e);
        checki "dst" dst (B1.get csr.Csr.edge_dst !e);
        incr e);
    checki "partition edge count" (B1.get csr.Csr.part_off (p + 1)) !e
  done

let test_roundtrip_slots () =
  (* Each edge's slots live in its own partition's slot range and map
     back to the edge's endpoints; each vertex's reduction list is
     strictly ascending (hence ascending by partition). *)
  for p = 0 to csr.Csr.num_partitions - 1 do
    checki "local vertices" (Pgraph.local_vertices pg p)
      (B1.get csr.Csr.slot_off (p + 1) - B1.get csr.Csr.slot_off p);
    for e = B1.get csr.Csr.part_off p to B1.get csr.Csr.part_off (p + 1) - 1 do
      let check_slot name slot v =
        checkb (name ^ " slot in partition range") true
          (slot >= B1.get csr.Csr.slot_off p && slot < B1.get csr.Csr.slot_off (p + 1));
        checki (name ^ " slot vertex") v (B1.get csr.Csr.slot_vertex slot)
      in
      check_slot "src" (B1.get csr.Csr.src_slot e) (B1.get csr.Csr.edge_src e);
      check_slot "dst" (B1.get csr.Csr.dst_slot e) (B1.get csr.Csr.edge_dst e)
    done
  done;
  checki "reduction table covers every slot" csr.Csr.num_slots
    (B1.get csr.Csr.red_off csr.Csr.num_vertices);
  for v = 0 to csr.Csr.num_vertices - 1 do
    for i = B1.get csr.Csr.red_off v to B1.get csr.Csr.red_off (v + 1) - 1 do
      checki "slot belongs to vertex" v (B1.get csr.Csr.slot_vertex (B1.get csr.Csr.red_slot i));
      if i > B1.get csr.Csr.red_off v then
        checkb "ascending partition order" true
          (B1.get csr.Csr.red_slot i > B1.get csr.Csr.red_slot (i - 1))
    done
  done

let test_out_degrees () =
  for v = 0 to csr.Csr.num_vertices - 1 do
    checki "out degree" (Graph.out_degree g v) (B1.get csr.Csr.out_deg v)
  done

(* --- bit-identical results across engines and domain counts ------- *)

let no_violations name vs =
  match vs with
  | [] -> ()
  | _ -> Alcotest.failf "%s: %a" name Check.Violation.pp_list vs

let test_engines_pagerank () =
  no_violations "pagerank" (Check.Engine_check.pagerank ~domains_counts ~cluster pg)

let test_engines_cc () =
  no_violations "connected components"
    (Check.Engine_check.connected_components ~domains_counts ~cluster pg)

let test_engines_triangles () =
  no_violations "triangles" (Check.Engine_check.triangle_count ~domains_counts ~cluster pg)

let test_engines_sssp () =
  let landmarks = Sssp.pick_landmarks ~seed:11L ~count:3 g in
  no_violations "sssp" (Check.Engine_check.shortest_paths ~domains_counts ~landmarks ~cluster pg)

let test_pagerank_bits_across_domains () =
  (* The raw float bits, not just digests: the partition-indexed
     reduction order makes float addition reproducible. *)
  let boxed = (Pagerank.run ~iterations:7 ~cluster pg).Pagerank.ranks in
  List.iter
    (fun domains ->
      let ranks = Pagerank.run_csr ~iterations:7 ~domains csr in
      Array.iteri
        (fun v r ->
          checkb "identical bits" true
            (Int64.equal (Int64.bits_of_float r) (Int64.bits_of_float boxed.(v))))
        ranks)
    domains_counts

let test_run_twice_reuses_buffers () =
  (* Back-to-back runs on one Csr.t must digest identically — the
     has-byte discipline leaves no stale occupancy behind. *)
  let d () = Check.Fault_check.float_attrs_digest (Pagerank.run_csr ~domains:2 csr) in
  checks "stable digest" (d ()) (d ());
  let dc () = Check.Fault_check.int_attrs_digest (Cc.run_csr ~domains:4 csr) in
  checks "cc after pagerank on same buffers" (dc ()) (dc ())

let test_rounds_reported () =
  let rounds = ref 0 in
  let chain = pg_of (Test_util.graph_of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]) in
  let c = Csr.build chain in
  let _ = Cc.run_csr ~iterations:50 ~rounds c in
  (* Labels flow down the chain one hop per round, then one quiet round. *)
  checki "rounds to converge" 6 !rounds

(* --- equivalence under an injected fault schedule ------------------ *)

let test_fault_schedule_equivalence () =
  (* Faults perturb only the boxed engine's time accounting; the CSR
     kernel must match the faulty run's values bit-for-bit too. *)
  let faults = Faults.config ~seed:5 "straggler@2:x3,loss@3:r2,crash@4:e1" in
  let faulty = Pagerank.run ~iterations:8 ~faults ~cluster pg in
  let csr_digest = Check.Fault_check.float_attrs_digest (Pagerank.run_csr ~iterations:8 csr) in
  checks "csr = faulty boxed pagerank"
    (Check.Fault_check.float_attrs_digest faulty.Pagerank.ranks)
    csr_digest;
  let faulty_cc = Cc.run ~iterations:10 ~faults ~cluster pg in
  checks "csr = faulty boxed cc"
    (Check.Fault_check.int_attrs_digest faulty_cc.Cc.labels)
    (Check.Fault_check.int_attrs_digest (Cc.run_csr ~iterations:10 ~domains:2 csr))

(* --- the multicore driver itself ----------------------------------- *)

let test_par_exec_iter_covers_items () =
  Par_exec.with_pool ~domains:4 (fun pool ->
      let hits = Array.make 1000 0 in
      Par_exec.iter pool ~n:1000 (fun _ i -> hits.(i) <- hits.(i) + 1);
      checkb "each item exactly once" true (Array.for_all (fun h -> h = 1) hits);
      (* The pool survives across epochs. *)
      let sum = Atomic.make 0 in
      Par_exec.run pool (fun w -> ignore (Atomic.fetch_and_add sum (w + 1)));
      checki "all workers ran" 10 (Atomic.get sum))

let test_par_exec_propagates_exceptions () =
  Par_exec.with_pool ~domains:2 (fun pool ->
      match Par_exec.iter pool ~n:8 (fun _ i -> if i = 5 then failwith "boom") with
      | () -> checkb "should have raised" false true
      | exception Failure m -> checks "original exception" "boom" m);
  (* And the inline path. *)
  Par_exec.with_pool ~domains:1 (fun pool ->
      match Par_exec.iter pool ~n:8 (fun _ i -> if i = 5 then failwith "boom") with
      | () -> checkb "should have raised" false true
      | exception Failure m -> checks "original exception" "boom" m)

let suite =
  [
    Alcotest.test_case "csr round-trip: sizes" `Quick test_roundtrip_sizes;
    Alcotest.test_case "csr round-trip: edge order" `Quick test_roundtrip_edges_in_partition_order;
    Alcotest.test_case "csr round-trip: slots + reduction table" `Quick test_roundtrip_slots;
    Alcotest.test_case "csr round-trip: out degrees" `Quick test_out_degrees;
    Alcotest.test_case "engines: pagerank boxed=csr at 1/2/4 domains" `Quick test_engines_pagerank;
    Alcotest.test_case "engines: cc boxed=csr at 1/2/4 domains" `Quick test_engines_cc;
    Alcotest.test_case "engines: triangles boxed=csr at 1/2/4 domains" `Quick
      test_engines_triangles;
    Alcotest.test_case "engines: sssp boxed=csr at 1/2/4 domains" `Quick test_engines_sssp;
    Alcotest.test_case "pagerank bits identical across domains" `Quick
      test_pagerank_bits_across_domains;
    Alcotest.test_case "run twice reuses buffers cleanly" `Quick test_run_twice_reuses_buffers;
    Alcotest.test_case "rounds out-parameter" `Quick test_rounds_reported;
    Alcotest.test_case "fault schedule leaves values csr-identical" `Quick
      test_fault_schedule_equivalence;
    Alcotest.test_case "par_exec covers every item once" `Quick test_par_exec_iter_covers_items;
    Alcotest.test_case "par_exec propagates exceptions" `Quick test_par_exec_propagates_exceptions;
  ]
