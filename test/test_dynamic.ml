(* Dynamic-graph subsystem: the mutation-spec DSL, delta planning and
   application, incremental refresh, the priced refresh-vs-rebuild
   driver, the Dyn_check laws, and the workload engine's mutation
   hook. *)

module Graph = Cutfit_graph.Graph
module Streaming = Cutfit_partition.Streaming
module Metrics = Cutfit_partition.Metrics
module Partitioner = Cutfit_partition.Partitioner
module Mutation = Cutfit.Mutation
module Incremental = Cutfit.Incremental
module Repartition = Cutfit.Repartition
module Dyn_check = Cutfit.Dyn_check
module Sanitize = Cutfit.Sanitize
module Engine = Cutfit_workload.Engine
module Job = Cutfit_workload.Job
module Workload_check = Cutfit_workload.Workload_check

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_clean what vs = checki (what ^ " is clean") 0 (List.length vs)

let g = Test_util.random_graph ~seed:41L ~n:200 ~m:1200
let num_partitions = 8
let cfg = Mutation.config "ins@1-3:r48,del@1-3:r12"

(* --- spec parsing --- *)

let test_parse_spec () =
  (match Mutation.parse_spec "ins@3:r64, del@2-5:r16" with
  | [
   { Mutation.kind = Mutation.Ins; from_batch = 3; to_batch = 3; edges = 64 };
   { Mutation.kind = Mutation.Del; from_batch = 2; to_batch = 5; edges = 16 };
  ] ->
      ()
  | _ -> Alcotest.fail "spec did not parse to the expected items");
  (* rN defaults to r32 *)
  (match Mutation.parse_spec "ins@1" with
  | [ { Mutation.kind = Mutation.Ins; edges = 32; _ } ] -> ()
  | _ -> Alcotest.fail "default rate did not apply");
  checki "max_batch spans all items" 5 (Mutation.max_batch (Mutation.config "ins@3:r64,del@2-5:r16"));
  Alcotest.(check string) "describe mentions the seed" "ins@1 (seed 9)"
    (Mutation.describe (Mutation.config ~seed:9 "ins@1"))

let test_parse_spec_rejects () =
  let rejects spec =
    match Mutation.parse_spec spec with
    | exception Mutation.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "spec %S should not parse" spec)
  in
  List.iter rejects [ ""; "grow@1"; "ins@0"; "ins@3-2"; "ins@1:r0"; "ins@1:x4"; "ins@" ]

(* --- planning and application --- *)

let test_plan_deterministic () =
  let d1 = Mutation.plan cfg ~batch:2 g in
  let d2 = Mutation.plan cfg ~batch:2 g in
  checkb "same inserts" true (d1.Mutation.inserts = d2.Mutation.inserts);
  checkb "same deletes" true (d1.Mutation.deletes = d2.Mutation.deletes);
  let other = Mutation.plan (Mutation.config ~seed:7 "ins@1-3:r48,del@1-3:r12") ~batch:2 g in
  checkb "seed changes the draw" true (other.Mutation.inserts <> d1.Mutation.inserts)

let test_plan_shape () =
  let d = Mutation.plan cfg ~batch:1 g in
  checki "insert count" 48 (Array.length d.Mutation.inserts);
  checki "delete count" 12 (Array.length d.Mutation.deletes);
  Array.iter
    (fun (s, t) ->
      checkb "endpoints in range" true (s >= 0 && s < 200 && t >= 0 && t < 200);
      checkb "no self loops" true (s <> t))
    d.Mutation.inserts;
  let last = ref (-1) in
  Array.iter
    (fun e ->
      checkb "deletes strictly ascending" true (e > !last);
      checkb "delete id in range" true (e >= 0 && e < Graph.num_edges g);
      last := e)
    d.Mutation.deletes;
  checkb "batch out of spec is empty" true (Mutation.is_empty (Mutation.plan cfg ~batch:9 g));
  Alcotest.check_raises "batch < 1" (Invalid_argument "Mutation.plan: batch < 1") (fun () ->
      ignore (Mutation.plan cfg ~batch:0 g))

let test_apply_matches_scratch_build () =
  let d = Mutation.plan cfg ~batch:1 g in
  let applied = Mutation.apply g d in
  let kept = Mutation.kept g d in
  let k = Array.length kept in
  let extra = Array.length d.Mutation.inserts in
  let src = Array.make (k + extra) 0 and dst = Array.make (k + extra) 0 in
  Array.iteri
    (fun j e ->
      src.(j) <- Graph.edge_src g e;
      dst.(j) <- Graph.edge_dst g e)
    kept;
  Array.iteri
    (fun i (s, t) ->
      src.(k + i) <- s;
      dst.(k + i) <- t)
    d.Mutation.inserts;
  let scratch = Graph.create ~n:(Graph.num_vertices g) ~src ~dst in
  check_clean "delta identity" (Dyn_check.graph_identity ~expect:scratch applied);
  checki "edge arithmetic" (Graph.num_edges g - 12 + 48) (Graph.num_edges applied)

let test_kept_excludes_deletes () =
  let d = Mutation.plan cfg ~batch:1 g in
  let kept = Mutation.kept g d in
  checki "kept size" (Graph.num_edges g - Array.length d.Mutation.deletes) (Array.length kept);
  Array.iter
    (fun e -> checkb "no deleted survivor" false (Array.exists (( = ) e) d.Mutation.deletes))
    kept

(* --- incremental refresh --- *)

let test_refresh_preserves_kept_edges () =
  let a = Streaming.assign Streaming.Greedy ~num_partitions g in
  let d = Mutation.plan cfg ~batch:1 g in
  let r = Incremental.refresh Streaming.Greedy ~num_partitions ~graph:g ~assignment:a d in
  let kept = Mutation.kept g d in
  checki "assignment covers the new graph" (Graph.num_edges r.Incremental.graph)
    (Array.length r.Incremental.assignment);
  Array.iteri
    (fun j e -> checki "kept edge keeps its partition" a.(e) r.Incremental.assignment.(j))
    kept;
  checki "placed = inserts" (Array.length d.Mutation.inserts) r.Incremental.placed_edges;
  checkb "repairs touch at most 2 vertices per delete" true
    (r.Incremental.repaired_vertices <= 2 * Array.length d.Mutation.deletes);
  check_clean "refreshed cut laws"
    (Dyn_check.cut_laws r.Incremental.graph ~num_partitions r.Incremental.assignment)

let test_refresh_validation () =
  let d = Mutation.plan cfg ~batch:1 g in
  Alcotest.check_raises "wrong assignment length"
    (Invalid_argument "Incremental.refresh: assignment length mismatch") (fun () ->
      ignore (Incremental.refresh Streaming.Greedy ~num_partitions ~graph:g ~assignment:[| 0 |] d))

(* --- pricing and decisions --- *)

let test_prices_monotone () =
  let price placed moved =
    Repartition.refresh_price ~placed_edges:placed ~repaired_vertices:4 ~moved_replicas:moved ()
  in
  checkb "more placements cost more" true (price 200 10 > price 20 10);
  checkb "more moved replicas cost more" true (price 20 100 > price 20 10);
  checkb "positive even when idle" true (price 0 0 > 0.0);
  let a = Streaming.assign Streaming.Greedy ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  let rebuild = Repartition.rebuild_price g m in
  checkb "rebuild price positive" true (rebuild > 0.0);
  checkb "scale multiplies rebuild" true
    (Repartition.rebuild_price ~scale:10.0 g m > 2.0 *. rebuild)

let test_decide_picks_cheaper () =
  let a = Streaming.assign Streaming.Greedy ~num_partitions g in
  let m = Metrics.compute g ~num_partitions a in
  let d = Mutation.plan cfg ~batch:1 g in
  let r = Incremental.refresh Streaming.Greedy ~num_partitions ~graph:g ~assignment:a d in
  let dec = Repartition.decide ~batch:1 ~delta:d ~old_metrics:m r in
  checkb "choice matches the prices" true
    (dec.Repartition.choice
    = if dec.Repartition.refresh_s <= dec.Repartition.rebuild_s then Repartition.Refresh
      else Repartition.Rebuild);
  checki "decision counts the delta" 48 dec.Repartition.inserts;
  checki "edges after" (Graph.num_edges r.Incremental.graph) dec.Repartition.edges_after;
  (* one event pair per decision *)
  let sink, read = Cutfit_obs.Sink.ring ~capacity:16 () in
  let telemetry = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
  Repartition.emit_events ~telemetry ~graph_name:"g" ~at_s:1.0 ~edges_before:(Graph.num_edges g) dec;
  Cutfit_obs.Telemetry.close telemetry;
  checki "mutation + repartition events" 2 (List.length (read ()))

let test_run_driver_and_events () =
  let sink, read = Cutfit_obs.Sink.ring ~capacity:256 () in
  let telemetry = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
  let steps = Repartition.run ~telemetry ~heuristic:Streaming.Greedy ~num_partitions cfg g in
  Cutfit_obs.Telemetry.close telemetry;
  checki "one step per non-empty batch" 3 (List.length steps);
  List.iter
    (fun (s : Repartition.step) ->
      checki "metrics describe the adopted cut"
        (Metrics.compute s.Repartition.graph ~num_partitions s.Repartition.assignment)
          .Metrics.comm_cost s.Repartition.metrics.Metrics.comm_cost)
    steps;
  let events = read () in
  let count p = List.length (List.filter p events) in
  checki "one mutation event per batch" 3
    (count (function Cutfit_obs.Event.Mutation_batch _ -> true | _ -> false));
  checki "one repartition event per batch" 3
    (count (function Cutfit_obs.Event.Repartition _ -> true | _ -> false))

(* --- the sanitizer laws themselves --- *)

let test_dyn_check_clean () =
  check_clean "dynamic suite"
    (Dyn_check.validate ~heuristic:(Streaming.Hdrf 1.0) ~num_partitions cfg g)

let test_dyn_check_catches_bad_graph () =
  let d = Mutation.plan cfg ~batch:1 g in
  let applied = Mutation.apply g d in
  let src = Array.init (Graph.num_edges applied) (Graph.edge_src applied) in
  let dst = Array.init (Graph.num_edges applied) (Graph.edge_dst applied) in
  (* corrupt one edge *)
  dst.(0) <- (dst.(0) + 1) mod Graph.num_vertices applied;
  let corrupt = Graph.create ~n:(Graph.num_vertices applied) ~src ~dst in
  let vs = Dyn_check.graph_identity ~expect:applied corrupt in
  checkb "delta-identity fires" true
    (List.exists (fun v -> v.Cutfit_check.Violation.rule = "delta-identity") vs);
  checkb "tagged with the dynamic suite" true
    (List.for_all (fun v -> v.Cutfit_check.Violation.suite = Dyn_check.suite) vs)

let test_dyn_check_catches_bad_cut () =
  let a = Streaming.assign Streaming.Greedy ~num_partitions g in
  a.(0) <- num_partitions (* out of range *);
  checkb "cut laws fire" true (Dyn_check.cut_laws g ~num_partitions a <> [])

let test_value_equivalence_clean () =
  let a = Streaming.assign Streaming.Greedy ~num_partitions g in
  check_clean "pagerank digests agree" (Dyn_check.value_equivalence g ~num_partitions a)

let test_incremental_partitioner_variant () =
  (match Partitioner.of_string "inc-greedy" with
  | Some (Partitioner.Incremental Streaming.Greedy) -> ()
  | _ -> Alcotest.fail "inc-greedy did not parse");
  let p = Partitioner.Incremental Streaming.Greedy in
  checkb "name roundtrips" true (Partitioner.of_string (Partitioner.name p) = Some p);
  checkb "incremental assigns like its stream" true
    (Partitioner.assign p ~num_partitions g
    = Partitioner.assign (Partitioner.Stream Streaming.Greedy) ~num_partitions g)

let test_sanitize_check_run_dynamic () =
  let r =
    Sanitize.check_run ~dynamic:cfg
      ~cluster:(Test_util.tiny_cluster ~num_partitions ())
      ~partitioner:(Partitioner.Stream Streaming.Greedy) ~algorithm:Cutfit.Advisor.Pagerank g
  in
  checkb "dynamic suite listed" true (List.mem_assoc "dynamic" r.Sanitize.suites);
  check_clean "sanitize run" r.Sanitize.violations

(* --- the workload engine's mutation hook --- *)

let engine_mix =
  {
    Job.name = "dyn-test";
    description = "two datasets, one granularity, for mutation tests";
    algorithms = [ (Cutfit.Advisor.Pagerank, 2.0); (Cutfit.Advisor.Connected_components, 1.0) ];
    datasets = [ ("roadnet_pa", 2.0); ("youtube", 1.0) ];
    partition_counts = [ (32, 1.0) ];
    mean_interarrival_s = 0.5;
  }

let stream = Job.generate ~seed:21L ~jobs:10 engine_mix

let run_engine ?telemetry ?(mutation_mode = Engine.Priced) () =
  Engine.run ~slots:2 ~budget_bytes:8.0e9 ~iterations:4 ?telemetry
    ~mutations:(Mutation.config "ins@1-6:r48,del@1-6:r12")
    ~mutate_every:3 ~mutation_mode ~seed:21L stream

let test_engine_mutations_deterministic () =
  checkb "run-twice digest" true
    (Workload_check.run_twice ~label:"engine+mutations" (fun () -> run_engine ()) = [])

let test_engine_mutations_clean () =
  let sink, read = Cutfit_obs.Sink.ring ~capacity:8192 () in
  let telemetry = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
  let report = run_engine ~telemetry () in
  Cutfit_obs.Telemetry.close telemetry;
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> v.Cutfit_check.Violation.rule)
       (Workload_check.report ~events:(read ()) report));
  checkb "batches landed" true (List.length report.Engine.mutations > 0);
  List.iter
    (fun (m : Engine.mutation_record) ->
      checkb "prices nonnegative" true (m.Engine.mut_refresh_s >= 0.0 && m.Engine.mut_rebuild_s >= 0.0);
      checkb "choice named" true (m.Engine.mut_choice = "refresh" || m.Engine.mut_choice = "rebuild");
      checkb "refreshes bounded by drops" true
        (m.Engine.mut_refreshed_entries <= m.Engine.mut_dropped_entries))
    report.Engine.mutations

let test_engine_forced_modes_diverge () =
  let refr = run_engine ~mutation_mode:Engine.Force_refresh () in
  let rebd = run_engine ~mutation_mode:Engine.Force_rebuild () in
  List.iter
    (fun (m : Engine.mutation_record) -> checkb "forced refresh" true (m.Engine.mut_choice = "refresh"))
    refr.Engine.mutations;
  List.iter
    (fun (m : Engine.mutation_record) ->
      checkb "forced rebuild" true (m.Engine.mut_choice = "rebuild");
      checki "rebuild refreshes nothing" 0 m.Engine.mut_refreshed_entries)
    rebd.Engine.mutations;
  checkb "refresh keeps more of the cache warm" true
    (Engine.hit_rate refr >= Engine.hit_rate rebd)

let test_engine_mutation_mode_strings () =
  List.iter
    (fun m ->
      checkb "mode roundtrips" true
        (Engine.mutation_mode_of_string (Engine.mutation_mode_name m) = Some m))
    [ Engine.Priced; Engine.Force_refresh; Engine.Force_rebuild ];
  checkb "unknown rejected" true (Engine.mutation_mode_of_string "bogus" = None)

let suite =
  [
    Alcotest.test_case "parse spec" `Quick test_parse_spec;
    Alcotest.test_case "parse rejects" `Quick test_parse_spec_rejects;
    Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan shape" `Quick test_plan_shape;
    Alcotest.test_case "apply = scratch build" `Quick test_apply_matches_scratch_build;
    Alcotest.test_case "kept excludes deletes" `Quick test_kept_excludes_deletes;
    Alcotest.test_case "refresh preserves kept edges" `Quick test_refresh_preserves_kept_edges;
    Alcotest.test_case "refresh validation" `Quick test_refresh_validation;
    Alcotest.test_case "prices monotone" `Quick test_prices_monotone;
    Alcotest.test_case "decide picks cheaper" `Quick test_decide_picks_cheaper;
    Alcotest.test_case "driver + events" `Quick test_run_driver_and_events;
    Alcotest.test_case "dyn check clean" `Quick test_dyn_check_clean;
    Alcotest.test_case "dyn check catches bad graph" `Quick test_dyn_check_catches_bad_graph;
    Alcotest.test_case "dyn check catches bad cut" `Quick test_dyn_check_catches_bad_cut;
    Alcotest.test_case "value equivalence" `Quick test_value_equivalence_clean;
    Alcotest.test_case "incremental partitioner" `Quick test_incremental_partitioner_variant;
    Alcotest.test_case "sanitize --dynamic" `Quick test_sanitize_check_run_dynamic;
    Alcotest.test_case "engine mutations deterministic" `Quick test_engine_mutations_deterministic;
    Alcotest.test_case "engine mutations clean" `Quick test_engine_mutations_clean;
    Alcotest.test_case "forced modes diverge" `Quick test_engine_forced_modes_diverge;
    Alcotest.test_case "mutation mode strings" `Quick test_engine_mutation_mode_strings;
  ]
