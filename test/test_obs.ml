(* Tests for the observability layer: metric registry semantics, the
   JSON codec round-trip, and — the load-bearing property — exact
   reconciliation between the per-superstep event stream and the
   engine's own Trace.t aggregates. *)

module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Pregel = Cutfit_bsp.Pregel
module Gas = Cutfit_bsp.Gas
module Trace = Cutfit_bsp.Trace
module Json = Cutfit_obs.Json
module Metric = Cutfit_obs.Metric
module Event = Cutfit_obs.Event
module Sink = Cutfit_obs.Sink
module Telemetry = Cutfit_obs.Telemetry

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0)) (* exact equality, by design *)

(* --- metric registry --- *)

let test_metric_cells () =
  let reg = Metric.create_registry () in
  let c = Metric.counter reg "msgs" in
  Metric.incr c;
  Metric.add c 41;
  checki "counter" 42 (Metric.value c);
  checki "same name, same cell" 42 (Metric.value (Metric.counter reg "msgs"));
  let g = Metric.gauge reg "bytes" in
  Metric.set g 7.5;
  Metric.set g 2.5;
  checkf "gauge keeps last" 2.5 (Metric.read g);
  let t = Metric.timer reg "span" in
  Metric.record t 1.0;
  Metric.record t 0.25;
  checkf "timer total" 1.25 (Metric.total t);
  checki "timer observations" 2 (Metric.observations t);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metric.gauge: \"msgs\" is registered as another kind") (fun () ->
      ignore (Metric.gauge reg "msgs"));
  let names = List.map fst (Metric.snapshot reg) in
  Alcotest.(check (list string)) "snapshot sorted" [ "bytes"; "msgs"; "span" ] names

let test_metric_time_runs_thunk () =
  let reg = Metric.create_registry () in
  let t = Metric.timer reg "wall" in
  let x = Metric.time t (fun () -> 1 + 1) in
  checki "thunk result" 2 x;
  checki "one observation" 1 (Metric.observations t);
  checkb "nonnegative" true (Metric.total t >= 0.0)

(* --- JSON codec --- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "parse error on %s: %s" (Json.to_string j) e

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1.7976931348623157e308;
      Json.Float (-4.9e-324);
      Json.Float 3.0;
      Json.String "with \"quotes\", a \\ and a \ttab\n";
      Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ];
      Json.Obj [ ("a", Json.List []); ("b", Json.Obj [ ("c", Json.Bool false) ]) ];
    ]
  in
  List.iter (fun j -> checkb (Json.to_string j) true (roundtrip j = j)) samples;
  (* Whole floats keep their floatness across the wire. *)
  checkb "3.0 stays Float" true (roundtrip (Json.Float 3.0) = Json.Float 3.0);
  checkb "3 stays Int" true (roundtrip (Json.Int 3) = Json.Int 3);
  (* Non-finite floats degrade to null, which reads back as nan. *)
  (match Json.to_float (roundtrip (Json.Float nan)) with
  | Some f -> checkb "nan -> null -> nan" true (Float.is_nan f)
  | None -> Alcotest.fail "nan did not read back as a float");
  match Json.of_string "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "trailing input accepted"
  | Error _ -> ()

let test_event_roundtrip () =
  let ss =
    Event.Superstep
      {
        Event.step = 3;
        active_vertices = 17;
        active_edges = 90;
        messages = 123;
        local_shuffles = 40;
        remote_shuffles = 60;
        broadcast_replicas = 55;
        remote_broadcasts = 21;
        wire_bytes = 123456.789;
        executor_busy_s = [| 0.1; 0.30000000000000004 |];
        barrier_wait_s = [| 0.2; 0.0 |];
        max_task_s = 0.025;
        min_task_s = 1e-9;
        compute_s = 0.3;
        network_s = 0.01;
        overhead_s = 0.05;
        time_s = 0.35;
      }
  in
  let re =
    Event.Run_end
      {
        Event.label = "pregel";
        outcome = "completed";
        supersteps = 9;
        total_s = 1.25;
        load_s = 0.125;
        checkpoint_s = 0.0;
        recovery_s = 0.0;
        total_messages = 1234;
        total_remote = 567;
        total_wire_bytes = 89012.5;
      }
  in
  List.iter
    (fun e ->
      match Event.of_line (Event.to_line e) with
      | Ok e' -> checkb "event round-trips" true (e = e')
      | Error msg -> Alcotest.failf "of_line: %s" msg)
    [ Event.Run_start { label = "PR/DBH" }; ss; re ]

let test_skew () =
  let base =
    {
      Event.step = 0;
      active_vertices = 0;
      active_edges = 0;
      messages = 0;
      local_shuffles = 0;
      remote_shuffles = 0;
      broadcast_replicas = 0;
      remote_broadcasts = 0;
      wire_bytes = 0.0;
      executor_busy_s = [||];
      barrier_wait_s = [||];
      max_task_s = 0.0;
      min_task_s = 0.0;
      compute_s = 0.0;
      network_s = 0.0;
      overhead_s = 0.0;
      time_s = 0.0;
    }
  in
  checkf "idle superstep skews 1.0" 1.0 (Event.skew base);
  checkf "balanced" 2.0 (Event.skew { base with Event.max_task_s = 0.4; min_task_s = 0.2 });
  checkb "idle minimum -> infinite spread" true
    (Event.skew { base with Event.max_task_s = 0.4 } = infinity)

(* --- telemetry handle and sinks --- *)

let test_ring_capacity () =
  let sink, contents = Sink.ring ~capacity:3 () in
  let t = Telemetry.create ~sinks:[ sink ] () in
  for i = 1 to 5 do
    Telemetry.emit t (Event.Run_start { label = string_of_int i })
  done;
  let labels =
    List.filter_map
      (function Event.Run_start { label } -> Some label | _ -> None)
      (contents ())
  in
  Alcotest.(check (list string)) "last three, in order" [ "3"; "4"; "5" ] labels;
  checki "emitted counts all five" 5 (Telemetry.events_emitted t);
  Telemetry.close t

let test_close_is_idempotent_and_drops () =
  let sink, contents = Sink.ring () in
  let t = Telemetry.create ~sinks:[ sink ] () in
  Telemetry.emit t (Event.Run_start { label = "a" });
  Telemetry.close t;
  Telemetry.close t;
  Telemetry.emit t (Event.Run_start { label = "after-close" });
  checki "post-close emit dropped" 1 (List.length (contents ()));
  checki "emitted count unchanged" 1 (Telemetry.events_emitted t)

let test_console_sink_renders () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let t = Telemetry.create ~sinks:[ Sink.console ~verbose:true ppf ] () in
  Telemetry.emit t (Event.Run_start { label = "PR/DBH" });
  Telemetry.close t;
  Format.pp_print_flush ppf ();
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions the run label" true (contains (Buffer.contents buf) "PR/DBH")

(* --- reconciliation with Trace.t --- *)

(* The engine under observation: min-label propagation, as in
   test_bsp.ml, on a generated graph big enough to produce remote
   traffic on every superstep. *)
let min_label_program =
  {
    Pregel.init = (fun v -> v);
    initial_msg = max_int;
    vprog = (fun _ l m -> min l m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        if src_attr < dst_attr then emit Pregel.To_dst src_attr
        else if dst_attr < src_attr then emit Pregel.To_src dst_attr);
    merge = min;
    state_bytes = 8;
    msg_bytes = 8;
  }

let observed_run () =
  let g = Test_util.random_graph ~seed:55L ~n:200 ~m:1500 in
  let cluster = Test_util.tiny_cluster () in
  let np = cluster.Cluster.num_partitions in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  let pg = Pgraph.build g ~num_partitions:np a in
  let path = Filename.temp_file "cutfit_obs" ".jsonl" in
  let ring, contents = Sink.ring () in
  let t = Telemetry.create ~sinks:[ ring; Sink.jsonl path ] () in
  let r = Pregel.run ~telemetry:t ~cluster pg min_label_program in
  (match Gas.run ~telemetry:t ~cluster pg
           {
             Gas.init = (fun v -> v);
             direction = Gas.Gather_both;
             gather =
               (fun ~src ~dst ~src_attr ~dst_attr ~target ->
                 if target = dst then Some src_attr
                 else if target = src then Some dst_attr
                 else None);
             sum = min;
             apply =
               (fun _ label total ->
                 match total with Some x -> (min label x, false) | None -> (label, false));
             state_bytes = 8;
             gather_bytes = 8;
           }
   with
  | _ -> ());
  Telemetry.close t;
  (r.Pregel.trace, contents (), t, path)

let supersteps_of events =
  List.filter_map (function Event.Superstep s -> Some s | _ -> None) events

let run_ends_of events =
  List.filter_map (function Event.Run_end e -> Some e | _ -> None) events

(* Events for the pregel run only: everything before the second engine's
   records. The stream is [pregel supersteps; pregel Run_end; gas ...]. *)
let split_first_run events =
  let rec take acc = function
    | [] -> (List.rev acc, [])
    | Event.Run_end _ :: rest -> (List.rev acc, rest)
    | e :: rest -> take (e :: acc) rest
  in
  take [] events

let test_event_stream_reconciles_with_trace () =
  let trace, events, _t, path = observed_run () in
  Sys.remove path;
  let first_run, _rest = split_first_run events in
  let ss = supersteps_of first_run in
  checki "one event per trace superstep" (List.length trace.Trace.supersteps) (List.length ss);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 ss in
  let sumf f = List.fold_left (fun acc s -> acc +. f s) 0.0 ss in
  checki "messages" (Trace.total_messages trace) (sum (fun s -> s.Event.messages));
  checki "remote messages"
    (Trace.total_remote_messages trace)
    (sum (fun s -> s.Event.remote_shuffles + s.Event.remote_broadcasts));
  checkf "wire bytes, exactly"
    (Trace.total_wire_bytes trace)
    (sumf (fun s -> s.Event.wire_bytes));
  checkb "remote traffic observed" true (Trace.total_remote_messages trace > 0);
  (* Per-superstep: the event's fields agree with the trace record. *)
  List.iter2
    (fun (ts : Trace.superstep) (es : Event.superstep) ->
      checki "step" ts.Trace.step es.Event.step;
      checki "msgs" ts.Trace.messages es.Event.messages;
      checki "remote shuffles" ts.Trace.remote_shuffles es.Event.remote_shuffles;
      checki "local + remote = shuffle groups" ts.Trace.shuffle_groups
        (es.Event.local_shuffles + es.Event.remote_shuffles);
      checkf "wire" ts.Trace.wire_bytes es.Event.wire_bytes;
      checkf "compute" ts.Trace.compute_s es.Event.compute_s;
      checkf "time" ts.Trace.time_s es.Event.time_s;
      (* Barrier accounting: waits are measured against the slowest
         executor, so the minimum wait is exactly zero and
         busy + wait is constant across executors. *)
      let slowest = Array.fold_left Float.max 0.0 es.Event.executor_busy_s in
      Array.iteri
        (fun e wait ->
          checkf "busy + wait = slowest" slowest (es.Event.executor_busy_s.(e) +. wait))
        es.Event.barrier_wait_s;
      checkb "max task bounds min" true (es.Event.max_task_s >= es.Event.min_task_s))
    trace.Trace.supersteps ss

let test_run_end_matches_trace () =
  let trace, events, t, path = observed_run () in
  Sys.remove path;
  (match run_ends_of events with
  | [ pregel_end; gas_end ] ->
      Alcotest.(check string) "label" "pregel" pregel_end.Event.label;
      Alcotest.(check string) "outcome" "completed" pregel_end.Event.outcome;
      checki "supersteps excludes build stage"
        (List.length trace.Trace.supersteps - 1)
        pregel_end.Event.supersteps;
      checkf "total_s" trace.Trace.total_s pregel_end.Event.total_s;
      checki "messages" (Trace.total_messages trace) pregel_end.Event.total_messages;
      checki "remote" (Trace.total_remote_messages trace) pregel_end.Event.total_remote;
      checkf "wire" (Trace.total_wire_bytes trace) pregel_end.Event.total_wire_bytes;
      Alcotest.(check string) "gas label" "gas" gas_end.Event.label
  | ends -> Alcotest.failf "expected 2 run ends, got %d" (List.length ends));
  (* Registry aggregates accumulated across both runs. *)
  let reg = Telemetry.metrics t in
  checki "bsp.runs" 2 (Metric.value (Metric.counter reg "bsp.runs"));
  checkb "bsp.messages counted" true
    (Metric.value (Metric.counter reg "bsp.messages") >= Trace.total_messages trace);
  checki "simulated_s observations" 2 (Metric.observations (Metric.timer reg "bsp.simulated_s"))

let test_jsonl_file_reconciles () =
  let trace, events, t, path = observed_run () in
  let lines = ref [] in
  let ic = open_in path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let parsed =
    List.rev_map
      (fun line ->
        match Event.of_line line with
        | Ok e -> e
        | Error msg -> Alcotest.failf "bad JSONL line %s: %s" line msg)
      !lines
  in
  Sys.remove path;
  checki "one line per event" (Telemetry.events_emitted t) (List.length parsed);
  checkb "file and ring agree" true (parsed = events);
  let first_run, _ = split_first_run parsed in
  let ss = supersteps_of first_run in
  checki "remote messages from the file"
    (Trace.total_remote_messages trace)
    (List.fold_left (fun acc s -> acc + s.Event.remote_shuffles + s.Event.remote_broadcasts) 0 ss);
  checkf "wire bytes from the file, bit-exact"
    (Trace.total_wire_bytes trace)
    (List.fold_left (fun acc (s : Event.superstep) -> acc +. s.Event.wire_bytes) 0.0 ss)

let test_zero_superstep_run () =
  (* An edgeless graph: no messages ever flow, so the run ends after the
     build stage, superstep 0 and one empty superstep — every counter in
     the stream is zero and reconciliation holds trivially. *)
  let g = Test_util.graph_of_edges ~n:8 [] in
  let cluster = Test_util.tiny_cluster () in
  let np = cluster.Cluster.num_partitions in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  let pg = Pgraph.build g ~num_partitions:np a in
  let ring, contents = Sink.ring () in
  let t = Telemetry.create ~sinks:[ ring ] () in
  let r = Pregel.run ~telemetry:t ~cluster pg min_label_program in
  Telemetry.close t;
  let trace = r.Pregel.trace in
  let ss = supersteps_of (contents ()) in
  checki "events match trace length" (List.length trace.Trace.supersteps) (List.length ss);
  checki "no messages" 0 (Trace.total_messages trace);
  checki "no remote messages" (Trace.total_remote_messages trace)
    (List.fold_left (fun acc s -> acc + s.Event.remote_shuffles + s.Event.remote_broadcasts) 0 ss);
  List.iter
    (fun (s : Event.superstep) ->
      if s.Event.step > 0 then checki "late steps idle" 0 s.Event.messages)
    ss;
  match run_ends_of (contents ()) with
  | [ e ] -> Alcotest.(check string) "still completes" "completed" e.Event.outcome
  | _ -> Alcotest.fail "expected exactly one run end"

let suite =
  [
    Alcotest.test_case "metric cells" `Quick test_metric_cells;
    Alcotest.test_case "metric time" `Quick test_metric_time_runs_thunk;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "event round-trip" `Quick test_event_roundtrip;
    Alcotest.test_case "skew" `Quick test_skew;
    Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
    Alcotest.test_case "close idempotent" `Quick test_close_is_idempotent_and_drops;
    Alcotest.test_case "console sink" `Quick test_console_sink_renders;
    Alcotest.test_case "events reconcile with trace" `Quick test_event_stream_reconciles_with_trace;
    Alcotest.test_case "run end matches trace" `Quick test_run_end_matches_trace;
    Alcotest.test_case "jsonl file reconciles" `Quick test_jsonl_file_reconciles;
    Alcotest.test_case "zero-message run" `Quick test_zero_superstep_run;
  ]
