(* The dynamic race sanitizer: the Ownership recorder's conflict rules,
   the instrumented kernels' cleanliness at several domain counts, and
   the detector's ability to catch seeded corruptions. *)

module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Ownership = Cutfit_bsp.Ownership
module Check = Cutfit_check
module Race_check = Cutfit_check.Race_check
module Advisor = Cutfit.Advisor
module Sanitize = Cutfit.Sanitize

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let cluster = Test_util.tiny_cluster ()
let np = cluster.Cluster.num_partitions

let pg_of g =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  Pgraph.build g ~num_partitions:np a

let g = Test_util.random_graph ~seed:77L ~n:160 ~m:1100
let pg = pg_of g

let rules vs = List.sort_uniq String.compare (List.map (fun v -> v.Check.Violation.rule) vs)
let has_rule r vs = List.exists (fun v -> v.Check.Violation.rule = r) vs

(* --- the recorder itself ------------------------------------------- *)

let test_ownership_clean () =
  let own = Ownership.create ~slots:4 ~workers:2 in
  checki "first epoch" 1 (Ownership.epoch own);
  Ownership.write own ~worker:0 ~item:0 0;
  Ownership.write own ~worker:1 ~item:1 1;
  Ownership.barrier own;
  (* Next epoch: reading last epoch's slots is legal, once per slot. *)
  Ownership.read own ~worker:0 ~item:2 0;
  Ownership.read own ~worker:1 ~item:3 1;
  Ownership.barrier own;
  checkb "no conflicts" true (Ownership.violations own = []);
  checki "epoch advanced" 3 (Ownership.epoch own);
  checki "writes seen" 2 (Ownership.writes_seen own);
  checki "reads seen" 2 (Ownership.reads_seen own)

let test_ownership_slot_conflict () =
  let own = Ownership.create ~slots:4 ~workers:2 in
  Ownership.write own ~worker:0 ~item:0 2;
  Ownership.write own ~worker:1 ~item:5 2;
  Ownership.barrier own;
  match Ownership.violations own with
  | [ c ] ->
      checks "rule" "slot-conflict" c.Ownership.rule;
      checki "slot" 2 c.Ownership.slot;
      checki "epoch" 1 c.Ownership.epoch;
      checki "first item" 0 c.Ownership.first_item;
      checki "second item" 5 c.Ownership.second_item
  | vs -> Alcotest.failf "expected exactly one conflict, got %d" (List.length vs)

let test_ownership_premature_read () =
  let own = Ownership.create ~slots:4 ~workers:1 in
  Ownership.write own ~worker:0 ~item:0 1;
  Ownership.read own ~worker:0 ~item:3 1;
  Ownership.barrier own;
  match Ownership.violations own with
  | [ c ] ->
      checks "rule" "premature-read" c.Ownership.rule;
      checki "slot" 1 c.Ownership.slot
  | vs -> Alcotest.failf "expected exactly one conflict, got %d" (List.length vs)

let test_ownership_consume_conflict () =
  let own = Ownership.create ~slots:4 ~workers:2 in
  Ownership.write own ~worker:0 ~item:0 3;
  Ownership.barrier own;
  Ownership.read own ~worker:0 ~item:1 3;
  Ownership.read own ~worker:1 ~item:2 3;
  Ownership.barrier own;
  match Ownership.violations own with
  | [ c ] ->
      checks "rule" "consume-conflict" c.Ownership.rule;
      checki "epoch" 2 c.Ownership.epoch
  | vs -> Alcotest.failf "expected exactly one conflict, got %d" (List.length vs)

let test_ownership_out_of_range () =
  let own = Ownership.create ~slots:4 ~workers:1 in
  Ownership.write own ~worker:0 ~item:0 99;
  Ownership.barrier own;
  checkb "out of range caught" true
    (List.exists (fun c -> c.Ownership.rule = "slot-out-of-range") (Ownership.violations own))

let test_ownership_worker_independent () =
  (* The same item stream split across different workers must yield the
     same verdicts: conflicts are item-based, not worker-based. *)
  let run workers placement =
    let own = Ownership.create ~slots:8 ~workers in
    List.iteri
      (fun i slot -> Ownership.write own ~worker:(placement i) ~item:i slot)
      [ 0; 1; 2; 1 ];
    Ownership.barrier own;
    List.map
      (fun c -> Format.asprintf "%a" Ownership.pp_conflict c)
      (Ownership.violations own)
  in
  let one = run 1 (fun _ -> 0) in
  let four = run 4 (fun i -> i mod 4) in
  checkb "same verdicts at 1 and 4 workers" true (one = four);
  checkb "conflict found" true (one <> [])

(* --- instrumented kernels are clean -------------------------------- *)

let domains_counts = Race_check.default_domains

let test_kernels_clean () =
  checkb "suite name" true (Race_check.suite = "races");
  checkb "pagerank clean" true (Race_check.pagerank ~domains_counts pg = []);
  checkb "cc clean" true (Race_check.connected_components ~domains_counts pg = []);
  checkb "triangles clean" true (Race_check.triangle_count ~domains_counts pg = []);
  let landmarks = Cutfit_algo.Sssp.pick_landmarks ~seed:11L ~count:3 g in
  checkb "sssp clean" true (Race_check.shortest_paths ~domains_counts ~landmarks pg = [])

(* --- seeded corruptions are caught --------------------------------- *)

let test_seeded_foreign_write () =
  List.iter
    (fun domains ->
      let vs = Race_check.seeded_foreign_write ~domains pg in
      checkb "non-empty" true (vs <> []);
      checkb "slot-conflict surfaced" true (has_rule "slot-conflict" vs);
      (* The corruption makes items 0 and 1 claim slot 0; the report must
         name both. *)
      let detail =
        String.concat " " (List.map (fun v -> v.Check.Violation.detail) vs)
      in
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      checkb "names the slot" true (contains "slot 0" detail))
    [ 2; 4 ]

let test_seeded_premature_read () =
  let vs = Race_check.seeded_premature_read ~domains:2 pg in
  checkb "non-empty" true (vs <> []);
  checkb "premature-read surfaced" true (has_rule "premature-read" vs)

let test_seeded_deterministic () =
  let show vs = String.concat "\n" (List.map (fun v -> Format.asprintf "%a" Check.Violation.pp v) vs) in
  let a = show (Race_check.seeded_foreign_write ~domains:2 pg) in
  let b = show (Race_check.seeded_foreign_write ~domains:2 pg) in
  checks "same report across runs" a b;
  (* Across domain counts the label names the count but the conflicts
     themselves must be identical. *)
  let rules_of d = rules (Race_check.seeded_foreign_write ~domains:d pg) in
  checkb "same rules across domain counts" true (rules_of 2 = rules_of 4)

let test_self_check () = checkb "detector detects" true (Race_check.self_check pg = [])

(* --- sanitizer wiring ----------------------------------------------- *)

let test_sanitize_races_suite () =
  let report =
    Sanitize.check_run ~cluster ~race_domains:[ 1; 2 ] ~algorithm:Advisor.Pagerank g
  in
  checkb "report ok" true (Sanitize.ok report);
  checkb "races suite present" true (List.mem_assoc "races" report.Sanitize.suites);
  checki "races suite clean" 0 (List.assoc "races" report.Sanitize.suites)

let suite =
  [
    Alcotest.test_case "ownership clean" `Quick test_ownership_clean;
    Alcotest.test_case "ownership slot conflict" `Quick test_ownership_slot_conflict;
    Alcotest.test_case "ownership premature read" `Quick test_ownership_premature_read;
    Alcotest.test_case "ownership consume conflict" `Quick test_ownership_consume_conflict;
    Alcotest.test_case "ownership out of range" `Quick test_ownership_out_of_range;
    Alcotest.test_case "ownership worker independent" `Quick test_ownership_worker_independent;
    Alcotest.test_case "instrumented kernels clean" `Slow test_kernels_clean;
    Alcotest.test_case "seeded foreign write caught" `Quick test_seeded_foreign_write;
    Alcotest.test_case "seeded premature read caught" `Quick test_seeded_premature_read;
    Alcotest.test_case "seeded reports deterministic" `Quick test_seeded_deterministic;
    Alcotest.test_case "detector self-check" `Quick test_self_check;
    Alcotest.test_case "sanitizer races suite" `Slow test_sanitize_races_suite;
  ]
