(* The sanitizer suites (lib/check) and their wiring: corrupted inputs
   must come back as structured [Violation.t] reports — never assert
   crashes — and intact pipelines must come back clean. *)

module Graph = Cutfit_graph.Graph
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Metrics = Cutfit.Metrics
module Partitioner = Cutfit.Partitioner
module Pipeline = Cutfit.Pipeline
module Check = Cutfit.Check
module Violation = Check.Violation
module Pgraph_check = Check.Pgraph_check
module Metrics_check = Check.Metrics_check
module Trace_check = Check.Trace_check
module Determinism = Check.Determinism
module Clock = Cutfit.Clock
module Metric = Cutfit_obs.Metric

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_clean what vs = Alcotest.(check int) (what ^ " is clean") 0 (List.length vs)

let has_rule rule vs = List.exists (fun v -> v.Violation.rule = rule) vs

let check_rule what rule vs =
  checkb (Printf.sprintf "%s reports %s" what rule) true (has_rule rule vs)

let g = Test_util.random_graph ~seed:77L ~n:200 ~m:1400
let cluster = Test_util.tiny_cluster ()
let np = cluster.Cutfit_bsp.Cluster.num_partitions
let assignment = Partitioner.assign (Partitioner.Hash Cutfit.Strategy.Two_d) ~num_partitions:np g
let pg = Pgraph.build g ~num_partitions:np assignment

(* --- malformed assignments: structured reports, no exceptions --- *)

let test_assignment_out_of_range () =
  let bad = Array.copy assignment in
  bad.(3) <- np + 5;
  bad.(7) <- -1;
  let vs = Pgraph_check.assignment g ~num_partitions:np bad in
  check_rule "out-of-range pid" "assignment-range" vs;
  checkb "every violation names the pgraph suite" true
    (List.for_all (fun v -> v.Violation.suite = "pgraph") vs)

let test_assignment_wrong_length () =
  let vs = Pgraph_check.assignment g ~num_partitions:np (Array.make 3 0) in
  check_rule "truncated assignment" "assignment-length" vs

let test_assignment_bad_np () =
  check_rule "zero partitions" "num-partitions" (Pgraph_check.assignment g ~num_partitions:0 assignment)

let test_metrics_validate_never_raises () =
  (* Metrics.compute itself raises on this input; the checker must not. *)
  let vs = Metrics_check.validate g ~num_partitions:np (Array.make 3 0) (Pgraph.metrics pg) in
  check_rule "malformed assignment via metrics checker" "assignment-length" vs

(* --- corrupted Pgraph structure, via view-accessor wrapping --- *)

let test_pgraph_clean () = check_clean "intact pgraph" (Pgraph_check.validate pg)

let corrupt f =
  let view = Pgraph_check.view_of_pgraph pg in
  Pgraph_check.validate_view (f view)

let test_view_edge_coverage () =
  (* Partition 0 claims the edges of partition 1: the edges assigned to 0
     vanish and partition 1's appear under the wrong owner. *)
  let vs =
    corrupt (fun v ->
        { v with Pgraph_check.edges_of_partition = (fun p -> v.Pgraph_check.edges_of_partition (if p = 0 then 1 else p)) })
  in
  check_rule "swapped edge lists" "edge-coverage" vs

let test_view_unsorted_replicas () =
  let vs =
    corrupt (fun v ->
        {
          v with
          Pgraph_check.replicas =
            (fun vtx ->
              let r = v.Pgraph_check.replicas vtx in
              if Array.length r > 1 then begin
                let r = Array.copy r in
                let t = r.(0) in
                r.(0) <- r.(Array.length r - 1);
                r.(Array.length r - 1) <- t;
                r
              end
              else r);
        })
  in
  check_rule "reversed replica list" "replicas" vs

let test_view_total_replicas () =
  let vs = corrupt (fun v -> { v with Pgraph_check.total_replicas = v.Pgraph_check.total_replicas + 1 }) in
  check_rule "off-by-one replica total" "total-replicas" vs

let test_view_master_identity () =
  let vs =
    corrupt (fun v ->
        { v with Pgraph_check.master = (fun vtx -> (vtx + 1) mod v.Pgraph_check.num_partitions) })
  in
  check_rule "rotated master map" "master-identity" vs

let test_view_local_vertices () =
  let vs =
    corrupt (fun v ->
        { v with Pgraph_check.local_vertices = (fun p -> v.Pgraph_check.local_vertices p + 2) })
  in
  check_rule "inflated local vertex tables" "local-vertices" vs

let test_view_reports_are_capped () =
  (* A corruption touching every vertex must yield a bounded report, not
     one violation per vertex. *)
  let vs = corrupt (fun v -> { v with Pgraph_check.master = (fun _ -> 0) }) in
  checkb "capped" true (List.length vs <= 10)

(* --- metrics identity and recomputation --- *)

let metrics = Pgraph.metrics pg

let test_metrics_clean () =
  check_clean "identity on computed metrics" (Metrics_check.identity metrics);
  check_clean "validate on computed metrics" (Metrics_check.validate g ~num_partitions:np assignment metrics)

let test_metrics_identity_violation () =
  (* Breaking §3.1: comm_cost + non_cut <> vertices_to_same + vertices_to_other. *)
  let broken = { metrics with Metrics.vertices_to_other = metrics.Metrics.vertices_to_other + 1 } in
  check_rule "broken replica identity" "replica-identity" (Metrics_check.identity broken);
  check_rule "broken replica identity (validate)" "replica-identity"
    (Metrics_check.validate g ~num_partitions:np assignment broken)

let test_metrics_comm_cost_floor () =
  let broken = { metrics with Metrics.comm_cost = 0; vertices_to_same = 0; vertices_to_other = metrics.Metrics.non_cut } in
  check_rule "comm_cost below 2*cut" "comm-cost-floor" (Metrics_check.identity broken)

let test_metrics_negative_count () =
  let broken = { metrics with Metrics.cut = -1 } in
  check_rule "negative cut" "negative-count" (Metrics_check.identity broken)

let test_metrics_recomputation () =
  (* Identity still holds, but the numbers are not this graph's. *)
  let broken =
    {
      metrics with
      Metrics.comm_cost = metrics.Metrics.comm_cost + 2;
      vertices_to_same = metrics.Metrics.vertices_to_same + 2;
    }
  in
  check_clean "identity alone cannot see it" (Metrics_check.identity broken);
  checkb "recomputation catches it" true
    (Metrics_check.validate g ~num_partitions:np assignment broken <> [])

(* --- trace conservation laws --- *)

let run_pagerank () =
  let p = Pipeline.prepare ~cluster ~partitioner:(Partitioner.Hash Cutfit.Strategy.Two_d) ~algorithm:Cutfit.Advisor.Pagerank g in
  snd (Pipeline.pagerank p)

let trace = run_pagerank ()

let test_trace_clean () = check_clean "intact trace" (Trace_check.validate trace)

let with_first_compute_step f t =
  {
    t with
    Trace.supersteps =
      List.map (fun s -> if s.Trace.step = 0 then f s else s) t.Trace.supersteps;
  }

let test_trace_time_decomposition () =
  let broken = with_first_compute_step (fun s -> { s with Trace.time_s = s.Trace.time_s +. 0.25 }) trace in
  check_rule "padded superstep time" "time-decomposition" (Trace_check.validate broken);
  check_rule "total no longer folds" "total-time" (Trace_check.validate broken)

let test_trace_conservation () =
  let broken = with_first_compute_step (fun s -> { s with Trace.remote_shuffles = s.Trace.shuffle_groups + 1 }) trace in
  check_rule "more remote than total" "shuffle-conservation" (Trace_check.validate broken)

let test_trace_negative_counter () =
  let broken = with_first_compute_step (fun s -> { s with Trace.messages = -4 }) trace in
  check_rule "negative messages" "negative-count" (Trace_check.validate broken)

let test_trace_checkpoint_time () =
  let broken = { trace with Trace.checkpoints = 0; checkpoint_s = 1.0; total_s = trace.Trace.total_s +. 1.0 -. trace.Trace.checkpoint_s } in
  check_rule "phantom checkpoint seconds" "checkpoint-time" (Trace_check.validate broken)

(* --- determinism digests --- *)

let test_digest_stability () =
  let t1 = run_pagerank () and t2 = run_pagerank () in
  Alcotest.(check string) "identical runs digest identically" (Determinism.trace_digest t1)
    (Determinism.trace_digest t2);
  checkb "digest is hex md5" true (String.length (Determinism.trace_digest t1) = 32)

let test_digest_sensitivity () =
  let broken = with_first_compute_step (fun s -> { s with Trace.messages = s.Trace.messages + 1 }) trace in
  checkb "one counter flips the digest" true
    (Determinism.trace_digest broken <> Determinism.trace_digest trace)

let test_run_twice () =
  check_clean "deterministic thunk" (Determinism.run_twice ~label:"pr" (fun () -> Determinism.trace_digest (run_pagerank ())));
  let flip = ref false in
  let vs =
    Determinism.run_twice ~label:"flaky" (fun () ->
        flip := not !flip;
        if !flip then "a" else "b")
  in
  check_rule "diverging thunk" "divergence" vs

(* --- full-pipeline sanitizer --- *)

let test_check_run () =
  let report = Cutfit.Sanitize.check_run ~cluster ~algorithm:Cutfit.Advisor.Pagerank g in
  checkb "report ok" true (Cutfit.Sanitize.ok report);
  checki "five suites" 5 (List.length report.Cutfit.Sanitize.suites);
  List.iter
    (fun (suite, n) -> checki (suite ^ " count") 0 n)
    report.Cutfit.Sanitize.suites;
  checki "no violations" 0 (List.length report.Cutfit.Sanitize.violations)

let test_pipeline_check_flag () =
  let p = Pipeline.prepare ~check:true ~cluster ~algorithm:Cutfit.Advisor.Connected_components g in
  check_clean "check_prepared after paranoid prepare" (Pipeline.check_prepared p)

(* --- injectable clock --- *)

let test_clock_counter () =
  let c = Clock.counter ~start:10.0 ~step:0.5 () in
  Alcotest.(check (float 0.0)) "first read" 10.0 (c ());
  Alcotest.(check (float 0.0)) "second read" 10.5 (c ())

let test_metric_time_with_clock () =
  let reg = Metric.create_registry () in
  let t = Metric.timer reg "span" in
  let result = Metric.time ~clock:(Clock.counter ~step:2.0 ()) t (fun () -> 42) in
  checki "thunk result" 42 result;
  Alcotest.(check (float 1e-12)) "span is exactly one step" 2.0 (Metric.total t);
  checki "one observation" 1 (Metric.observations t);
  Metric.time ~clock:(Clock.fixed 5.0) t (fun () -> ());
  Alcotest.(check (float 1e-12)) "fixed clock measures zero" 2.0 (Metric.total t)

let suite =
  [
    Alcotest.test_case "assignment: out-of-range" `Quick test_assignment_out_of_range;
    Alcotest.test_case "assignment: wrong length" `Quick test_assignment_wrong_length;
    Alcotest.test_case "assignment: bad num_partitions" `Quick test_assignment_bad_np;
    Alcotest.test_case "metrics checker never raises" `Quick test_metrics_validate_never_raises;
    Alcotest.test_case "pgraph: clean" `Quick test_pgraph_clean;
    Alcotest.test_case "pgraph: edge coverage" `Quick test_view_edge_coverage;
    Alcotest.test_case "pgraph: unsorted replicas" `Quick test_view_unsorted_replicas;
    Alcotest.test_case "pgraph: total replicas" `Quick test_view_total_replicas;
    Alcotest.test_case "pgraph: master identity" `Quick test_view_master_identity;
    Alcotest.test_case "pgraph: local vertices" `Quick test_view_local_vertices;
    Alcotest.test_case "pgraph: capped reports" `Quick test_view_reports_are_capped;
    Alcotest.test_case "metrics: clean" `Quick test_metrics_clean;
    Alcotest.test_case "metrics: replica identity" `Quick test_metrics_identity_violation;
    Alcotest.test_case "metrics: comm-cost floor" `Quick test_metrics_comm_cost_floor;
    Alcotest.test_case "metrics: negative count" `Quick test_metrics_negative_count;
    Alcotest.test_case "metrics: recomputation" `Quick test_metrics_recomputation;
    Alcotest.test_case "trace: clean" `Quick test_trace_clean;
    Alcotest.test_case "trace: time decomposition" `Quick test_trace_time_decomposition;
    Alcotest.test_case "trace: conservation" `Quick test_trace_conservation;
    Alcotest.test_case "trace: negative counter" `Quick test_trace_negative_counter;
    Alcotest.test_case "trace: checkpoint time" `Quick test_trace_checkpoint_time;
    Alcotest.test_case "determinism: digest stability" `Quick test_digest_stability;
    Alcotest.test_case "determinism: digest sensitivity" `Quick test_digest_sensitivity;
    Alcotest.test_case "determinism: run twice" `Quick test_run_twice;
    Alcotest.test_case "sanitize: full pipeline" `Quick test_check_run;
    Alcotest.test_case "pipeline: ?check flag" `Quick test_pipeline_check_flag;
    Alcotest.test_case "clock: counter" `Quick test_clock_counter;
    Alcotest.test_case "metric: injected clock" `Quick test_metric_time_with_clock;
  ]
