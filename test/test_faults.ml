(* The fault layer end to end: the spec parser, the stateless plan
   draws, the recovery-equivalence invariant (faulty runs must land on
   bit-identical vertex values under both recovery modes), the abort
   path past the crash budget, and the workload engine's structured
   retry/failure semantics. *)

module Faults = Cutfit_bsp.Faults
module Trace = Cutfit_bsp.Trace
module Cost_model = Cutfit_bsp.Cost_model
module Pipeline = Cutfit.Pipeline
module Advisor = Cutfit.Advisor
module Check = Cutfit.Check
module Fault_check = Check.Fault_check
module Sanitize = Cutfit.Sanitize
module Engine = Cutfit_workload.Engine
module Job = Cutfit_workload.Job
module Cache = Cutfit_workload.Cache
module Workload_check = Cutfit_workload.Workload_check

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_clean what vs = Alcotest.(check int) (what ^ " is clean") 0 (List.length vs)
let has_rule rule vs = List.exists (fun v -> v.Check.Violation.rule = rule) vs

let check_rule what rule vs =
  checkb (Printf.sprintf "%s reports %s" what rule) true (has_rule rule vs)

(* --- spec parsing --- *)

let test_parse_spec () =
  (match Faults.parse_spec "crash@3:e1, straggler@2-4:x2.5, net@1-2:x0.5, loss@2:e0:r3, rand@0.1" with
  | [
   Faults.Crash { step = 3; executor = Some 1 };
   Faults.Straggler { from_step = 2; to_step = 4; executor = None; factor = 2.5 };
   Faults.Net { from_step = 1; to_step = 2; factor = 0.5 };
   Faults.Loss { step = 2; executor = Some 0; retries = 3 };
   Faults.Rand { rate = 0.1 };
  ] ->
      ()
  | _ -> Alcotest.fail "spec did not parse to the expected items");
  (* defaults *)
  (match Faults.parse_spec "straggler@1,net@1,loss@1" with
  | [
   Faults.Straggler { factor = 4.0; executor = None; _ };
   Faults.Net { factor = 0.25; _ };
   Faults.Loss { retries = 1; executor = None; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "defaults did not apply")

let test_parse_spec_rejects () =
  let rejects spec =
    match Faults.parse_spec spec with
    | exception Faults.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "spec %S should not parse" spec)
  in
  List.iter rejects
    [
      "crash@0" (* build stage is never faulted *);
      "crash@two";
      "straggler@3-1" (* backwards window *);
      "straggler@2:x0.5" (* slowdown below 1 *);
      "net@1:x0" (* zero bandwidth *);
      "net@1:x2" (* speedup *);
      "loss@1:r0";
      "rand@1.5";
      "meteor@3" (* unknown kind *);
      "crash@1:x3" (* option not valid for the kind *);
      "crash" (* missing @ *);
    ]

let test_config_describe () =
  let c = Faults.config ~seed:7 ~max_failures:1 ~mode:Faults.Lineage "crash@2:e0" in
  checki "seed" 7 c.Faults.seed;
  checki "budget" 1 c.Faults.max_failures;
  checks "raw spec preserved" "crash@2:e0" c.Faults.raw;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "describe mentions the mode" true (contains (Faults.describe c) "lineage")

(* --- realized plans: stateless, seeded, step 0 neutral --- *)

let test_plan_deterministic () =
  let c = Faults.config ~seed:11 "rand@0.5,straggler@2-5:x3" in
  let plans session = List.map (fun step -> Faults.plan session ~step) [ 5; 1; 3; 2; 4 ] in
  let a = plans (Faults.session ~executors:4 c) in
  let b = plans (Faults.session ~executors:4 c) in
  (* out-of-order and replayed calls must agree draw for draw *)
  List.iter2
    (fun (pa : Faults.plan) (pb : Faults.plan) ->
      checkb "network factor replays" true (pa.Faults.network_factor = pb.Faults.network_factor);
      checkb "crash replays" true (pa.Faults.crash = pb.Faults.crash);
      checkb "loss replays" true (pa.Faults.loss = pb.Faults.loss);
      for e = 0 to 3 do
        checkb "compute factor replays" true
          (pa.Faults.compute_factor e = pb.Faults.compute_factor e)
      done)
    a b

let test_plan_step_zero_neutral () =
  let c = Faults.config "crash@1,straggler@1-9:x5,net@1-9:x0.1,loss@1,rand@1.0" in
  let session = Faults.session ~executors:4 c in
  let p = Faults.plan session ~step:0 in
  checkb "no crash at step 0" true (p.Faults.crash = None);
  checkb "no loss at step 0" true (p.Faults.loss = None);
  checkb "full bandwidth at step 0" true (p.Faults.network_factor = 1.0);
  checkb "no slowdown at step 0" true (p.Faults.compute_factor 0 = 1.0);
  checkb "nothing announced at step 0" true (p.Faults.announce = [])

let test_crash_budget () =
  let c = Faults.config ~max_failures:1 "crash@1" in
  let s = Faults.session ~executors:4 c in
  checkb "first crash recovers" true (Faults.note_crash s = `Recover);
  checkb "second crash aborts" true (Faults.note_crash s = `Abort);
  checki "failures counted" 2 (Faults.failures s)

let test_retry_backoff () =
  let cm = Cost_model.default in
  let base = cm.Cost_model.retry_backoff_base_s in
  Alcotest.(check (float 1e-12)) "one retry" base (Cost_model.retry_backoff cm ~retries:1);
  Alcotest.(check (float 1e-12))
    "three retries sum the doubling series"
    (base +. (2.0 *. base) +. (4.0 *. base))
    (Cost_model.retry_backoff cm ~retries:3);
  checkb "cap bounds every delay" true
    (Cost_model.retry_backoff cm ~retries:30
    <= float_of_int 30 *. cm.Cost_model.retry_backoff_cap_s)

(* --- recovery equivalence: faulty runs land on bit-identical values --- *)

let cluster = Test_util.tiny_cluster ()
let g1 = Test_util.random_graph ~seed:77L ~n:200 ~m:1400
let g2 = Test_util.random_graph ~seed:5L ~n:120 ~m:900

let run_pagerank ?faults ?checkpoint_every g =
  let p =
    Pipeline.prepare ~cluster ?faults ?checkpoint_every ~algorithm:Advisor.Pagerank g
  in
  let ranks, trace = Pipeline.pagerank ~iterations:8 p in
  (Fault_check.float_attrs_digest ranks, trace)

let run_sssp ?faults ?checkpoint_every g =
  let p =
    Pipeline.prepare ~cluster ?faults ?checkpoint_every ~algorithm:Advisor.Shortest_paths g
  in
  let dists, trace = Pipeline.shortest_paths ~landmarks:[| 0; 3 |] p in
  (Fault_check.int_attrs_digest (Array.concat (Array.to_list dists)), trace)

let equivalence_case ~label ~mode
    (run :
      ?faults:Faults.config -> ?checkpoint_every:int -> Cutfit_graph.Graph.t -> string * Trace.t)
    graph =
  let faults = Faults.config ~mode "crash@2,straggler@1-3:x3,loss@3" in
  let baseline_attrs, baseline = run graph in
  let faulty_attrs, faulty = run ~faults ~checkpoint_every:2 graph in
  checkb (label ^ ": faulty run completed") true (Trace.completed faulty);
  checkb (label ^ ": recovery actually happened") true (Trace.num_recoveries faulty > 0);
  checks (label ^ ": bit-identical values") baseline_attrs faulty_attrs;
  check_clean
    (label ^ " equivalence")
    (Fault_check.equivalence ~label ~baseline ~faulty ~baseline_attrs ~faulty_attrs ());
  check_clean (label ^ " faulty-trace conservation") (Fault_check.validate_faulty faulty)

let test_equivalence_rollback () =
  equivalence_case ~label:"pr/g1/rollback" ~mode:Faults.Rollback run_pagerank g1;
  equivalence_case ~label:"sssp/g2/rollback" ~mode:Faults.Rollback run_sssp g2

let test_equivalence_lineage () =
  equivalence_case ~label:"pr/g2/lineage" ~mode:Faults.Lineage run_pagerank g2;
  equivalence_case ~label:"sssp/g1/lineage" ~mode:Faults.Lineage run_sssp g1

let test_equivalence_without_checkpoints () =
  (* no checkpoint cadence: rollback falls back to a full reload + replay *)
  let faults = Faults.config ~mode:Faults.Rollback "crash@3" in
  let baseline_attrs, baseline = run_pagerank g1 in
  let faulty_attrs, faulty = run_pagerank ~faults g1 in
  checkb "completed without checkpoints" true (Trace.completed faulty);
  checks "bit-identical values" baseline_attrs faulty_attrs;
  check_clean "equivalence"
    (Fault_check.equivalence ~baseline ~faulty ~baseline_attrs ~faulty_attrs ())

let test_abort_past_budget () =
  let faults = Faults.config ~max_failures:0 "crash@2" in
  let _attrs, faulty = run_pagerank ~faults g2 in
  checkb "aborted" true (faulty.Trace.outcome = Trace.Aborted);
  checkb "not completed" false (Trace.completed faulty);
  checks "outcome name" "aborted" (Trace.outcome_name faulty.Trace.outcome)

let test_sanitize_sixth_suite () =
  let faults = Faults.config "crash@2,rand@0.1" in
  let report =
    Sanitize.check_run ~cluster ~checkpoint_every:2 ~faults ~algorithm:Advisor.Pagerank g2
  in
  checkb "sanitizer ok under faults" true (Sanitize.ok report);
  checkb "faults suite present" true (List.mem_assoc "faults" report.Sanitize.suites);
  checki "six suites" 6 (List.length report.Sanitize.suites)

(* --- fabricated divergence: the checker must object --- *)

let test_equivalence_detects_divergence () =
  let baseline_attrs, baseline = run_pagerank g2 in
  (* the straggler stretches supersteps, so the swapped direction below
     is strictly cheaper and must trip the time law *)
  let faults = Faults.config "crash@2,straggler@1-4:x3" in
  let faulty_attrs, faulty = run_pagerank ~faults ~checkpoint_every:2 g2 in
  (* tampered values *)
  check_rule "tampered digest" "value-divergence"
    (Fault_check.equivalence ~baseline ~faulty ~baseline_attrs ~faulty_attrs:"deadbeef" ());
  (* swapped roles: the "baseline" carries recoveries, and the genuinely
     fault-free "faulty" run sums cheaper than the stretched one *)
  let swapped =
    Fault_check.equivalence ~baseline:faulty ~faulty:baseline
      ~baseline_attrs:faulty_attrs ~faulty_attrs:baseline_attrs ()
  in
  check_rule "faulted baseline" "baseline-faulted" swapped;
  check_rule "cheaper faulty run" "time-regression" swapped

(* --- workload engine: retries, invalidation, structured failure --- *)

let wl_mix =
  {
    Job.name = "test-faults";
    description = "fault tests";
    algorithms = [ (Advisor.Pagerank, 2.0); (Advisor.Connected_components, 1.0) ];
    datasets = [ ("roadnet_pa", 2.0); ("youtube", 1.0) ];
    partition_counts = [ (32, 1.0) ];
    mean_interarrival_s = 0.5;
  }

let wl_stream = Job.generate ~seed:21L ~jobs:6 wl_mix

let wl_run ?telemetry ?faults ?(max_retries = 1) () =
  Engine.run ~slots:2 ~iterations:4 ?telemetry ?faults ~max_retries ~seed:21L wl_stream

(* A pinned crash with a zero budget kills every attempt of every job:
   retries exhaust deterministically and each job fails structurally. *)
let killer = Faults.config ~max_failures:0 "crash@1"

let test_workload_structural_failure () =
  let r = wl_run ~faults:killer () in
  checki "every job fails" (List.length wl_stream) (Engine.failed_jobs r);
  checki "one retry per job" (List.length wl_stream) r.Engine.retries;
  List.iter
    (fun (rec_ : Engine.job_record) ->
      checkb "record marked failed" true rec_.Engine.failed;
      checks "aborted outcome" "aborted" rec_.Engine.outcome;
      checki "attempts = 1 + max_retries" 2 rec_.Engine.attempts)
    r.Engine.records;
  List.iter
    (fun (f : Engine.job_failure) ->
      checki "failure counts its attempts" 2 f.Engine.failed_attempts;
      checkb "failure names the cause" true
        (String.length f.Engine.reason > 0))
    r.Engine.failures;
  (* a failure never escapes as an exception, and the report stays lawful *)
  let sink, read = Cutfit_obs.Sink.ring ~capacity:8192 () in
  let telemetry = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
  let r2 = wl_run ~telemetry ~faults:killer () in
  Cutfit_obs.Telemetry.close telemetry;
  Alcotest.(check (list string)) "faulty report lawful" []
    (List.map
       (fun v -> v.Check.Violation.rule)
       (Workload_check.report ~events:(read ()) r2))

let test_workload_transient_faults_recover () =
  (* a survivable schedule: every job recovers in-run, nothing retries *)
  let faults = Faults.config "straggler@1-2:x3,loss@2" in
  let r = wl_run ~faults () in
  checki "no failures" 0 (Engine.failed_jobs r);
  checki "no retries" 0 r.Engine.retries;
  checkb "recoveries recorded" true
    (List.exists (fun (x : Engine.job_record) -> x.Engine.recoveries > 0) r.Engine.records);
  check_clean "report" (Workload_check.report r)

let test_workload_faulty_deterministic () =
  check_clean "faulty run-twice digest"
    (Workload_check.run_twice ~label:"faulty-engine" (fun () -> wl_run ~faults:killer ()))

let test_retry_delay () =
  Alcotest.(check (float 1e-12)) "first requeue" 2.0 (Engine.retry_delay_s ~attempt:1);
  Alcotest.(check (float 1e-12)) "doubles" 4.0 (Engine.retry_delay_s ~attempt:2);
  Alcotest.(check (float 1e-12)) "caps at 30s" 30.0 (Engine.retry_delay_s ~attempt:10)

let suite =
  [
    Alcotest.test_case "spec parses every kind and default" `Quick test_parse_spec;
    Alcotest.test_case "spec rejects malformed items" `Quick test_parse_spec_rejects;
    Alcotest.test_case "config carries seed/budget/mode" `Quick test_config_describe;
    Alcotest.test_case "plans are stateless and seeded" `Quick test_plan_deterministic;
    Alcotest.test_case "step 0 is never faulted" `Quick test_plan_step_zero_neutral;
    Alcotest.test_case "crash budget aborts past max_failures" `Quick test_crash_budget;
    Alcotest.test_case "retry backoff arithmetic" `Quick test_retry_backoff;
    Alcotest.test_case "rollback recovery is value-identical" `Quick test_equivalence_rollback;
    Alcotest.test_case "lineage recovery is value-identical" `Quick test_equivalence_lineage;
    Alcotest.test_case "rollback without checkpoints reloads" `Quick
      test_equivalence_without_checkpoints;
    Alcotest.test_case "crashes past the budget abort the run" `Quick test_abort_past_budget;
    Alcotest.test_case "sanitizer grows a sixth suite under faults" `Quick
      test_sanitize_sixth_suite;
    Alcotest.test_case "equivalence checker objects to divergence" `Quick
      test_equivalence_detects_divergence;
    Alcotest.test_case "workload: pinned crashes fail structurally" `Quick
      test_workload_structural_failure;
    Alcotest.test_case "workload: transient faults recover in-run" `Quick
      test_workload_transient_faults_recover;
    Alcotest.test_case "workload: faulty replay is bit-identical" `Quick
      test_workload_faulty_deterministic;
    Alcotest.test_case "workload retry delay schedule" `Quick test_retry_delay;
  ]
